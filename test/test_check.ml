(* The schedule explorer: choice strategies, exploration, replay, and
   the certified-inert default path. *)

module K = Multics_kernel
module Hw = Multics_hw
module Aim = Multics_aim
module Check = Multics_check
module Choice = Multics_choice.Choice

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Choice strategies *)

let test_choice_inert () =
  let c = Choice.default in
  check Alcotest.bool "inert" false (Choice.is_active c);
  check Alcotest.int "always 0" 0 (Choice.pick c ~domain:"d" ~ids:[| 7; 8 |]);
  check Alcotest.int "nothing recorded" 0 (Choice.decisions c)

let test_choice_scripted () =
  let c = Choice.scripted [ 1; 99; -3 ] in
  check Alcotest.int "scripted pick" 1 (Choice.pick c ~domain:"d" ~ids:[| 5; 6 |]);
  (* Out-of-range entries clamp rather than crash the replay. *)
  check Alcotest.int "clamped high" 1 (Choice.pick c ~domain:"d" ~ids:[| 5; 6 |]);
  check Alcotest.int "clamped low" 0 (Choice.pick c ~domain:"d" ~ids:[| 5; 6 |]);
  (* Exhausted scripts fall back to the default path. *)
  check Alcotest.int "padding" 0 (Choice.pick c ~domain:"d" ~ids:[| 5; 6 |]);
  check Alcotest.int "four decisions" 4 (Choice.decisions c);
  (* Singleton choice points are not real branches: not recorded. *)
  check Alcotest.int "singleton" 0 (Choice.pick c ~domain:"d" ~ids:[| 9 |]);
  check Alcotest.int "still four" 4 (Choice.decisions c)

let test_choice_random_deterministic () =
  let draw () =
    let c = Choice.random ~seed:11 () in
    List.init 20 (fun _ -> Choice.pick c ~domain:"d" ~ids:[| 0; 1; 2 |])
  in
  check (Alcotest.list Alcotest.int) "seed-stable" (draw ()) (draw ());
  let other =
    let c = Choice.random ~seed:12 () in
    List.init 20 (fun _ -> Choice.pick c ~domain:"d" ~ids:[| 0; 1; 2 |])
  in
  check Alcotest.bool "different seeds diverge" true (draw () <> other)

let test_choice_reset () =
  let c = Choice.random ~seed:3 () in
  let a = List.init 8 (fun _ -> Choice.pick c ~domain:"d" ~ids:[| 0; 1; 2; 3 |]) in
  Choice.reset c;
  check Alcotest.int "trace cleared" 0 (Choice.decisions c);
  let b = List.init 8 (fun _ -> Choice.pick c ~domain:"d" ~ids:[| 0; 1; 2; 3 |]) in
  check (Alcotest.list Alcotest.int) "reset rewinds the stream" a b

(* ------------------------------------------------------------------ *)
(* Exploration of the toy harness *)

let toy = Check.Harness.eventcount_system ~events:3 ()

let test_default_strategy_passes () =
  match Check.Explore.check_default toy with
  | Check.Explore.Passed s ->
      check Alcotest.bool "choice points consulted" true
        (s.Check.Explore.decisions > 0)
  | Check.Explore.Failed _ -> Alcotest.fail "default schedule violated oracle"

let test_dfs_explores_and_passes () =
  match Check.Explore.check_dfs ~max_runs:400 toy with
  | Check.Explore.Passed s ->
      check Alcotest.bool "more than one distinct schedule" true
        (s.Check.Explore.distinct > 1);
      check Alcotest.int "space closed" 0 s.Check.Explore.frontier_left
  | Check.Explore.Failed _ -> Alcotest.fail "correct harness violated oracle"

let test_random_explores_and_passes () =
  match Check.Explore.check_random ~runs:30 ~seed:5 toy with
  | Check.Explore.Passed s ->
      check Alcotest.bool "random diverged from default" true
        (s.Check.Explore.distinct > 1)
  | Check.Explore.Failed _ -> Alcotest.fail "correct harness violated oracle"

let test_dfs_finds_lost_wakeup () =
  let buggy = Check.Harness.eventcount_system ~bug:true ~events:2 () in
  match Check.Explore.check_dfs ~max_runs:200 buggy with
  | Check.Explore.Passed _ -> Alcotest.fail "seeded lost wakeup not found"
  | Check.Explore.Failed { f_problems; f_script; f_events; _ } ->
      check Alcotest.bool "reports a lost wakeup" true
        (List.exists
           (fun p ->
             Astring.String.is_infix ~affix:"lost wakeup" p)
           f_problems);
      check Alcotest.bool "counterexample is not the default schedule" true
        (f_script <> []);
      check Alcotest.int "events decode the script"
        (List.length f_script)
        (List.length
           (List.filteri (fun i _ -> i < List.length f_script) f_events));
      (* The default schedule of the buggy harness is safe: the bug is
         schedule-dependent, which is the whole reason to explore. *)
      (match Check.Explore.check_default buggy with
      | Check.Explore.Passed _ -> ()
      | Check.Explore.Failed _ ->
          Alcotest.fail "bug should hide under the default schedule")

let test_replay_exact () =
  let buggy = Check.Harness.eventcount_system ~bug:true ~events:2 () in
  match Check.Explore.check_dfs ~max_runs:200 buggy with
  | Check.Explore.Passed _ -> Alcotest.fail "seeded lost wakeup not found"
  | Check.Explore.Failed { f_script; f_problems; f_events; _ } ->
      (* Replaying the minimal script reproduces the identical failure
         and the identical decoded schedule, twice. *)
      let p1, e1 = Check.Explore.replay buggy ~script:f_script in
      let p2, e2 = Check.Explore.replay buggy ~script:f_script in
      check (Alcotest.list Alcotest.string) "same violation" f_problems p1;
      check (Alcotest.list Alcotest.string) "replay deterministic" p1 p2;
      let decode evs =
        List.map
          (fun (ev : Choice.event) ->
            Format.asprintf "%a" Choice.pp_event ev)
          evs
      in
      check (Alcotest.list Alcotest.string) "same schedule" (decode f_events)
        (decode e1);
      check (Alcotest.list Alcotest.string) "same schedule twice"
        (decode e1) (decode e2)

let test_random_finds_lost_wakeup () =
  let buggy = Check.Harness.eventcount_system ~bug:true ~events:2 () in
  match Check.Explore.check_random ~runs:100 ~seed:1 buggy with
  | Check.Explore.Passed _ ->
      Alcotest.fail "100 random schedules missed the seeded bug"
  | Check.Explore.Failed { f_seed; f_script; _ } ->
      check Alcotest.bool "offending seed reported" true (f_seed <> None);
      let problems, _ = Check.Explore.replay buggy ~script:f_script in
      check Alcotest.bool "shrunk script still fails" true (problems <> [])

(* ------------------------------------------------------------------ *)
(* The kernel under exploration *)

let test_kernel_dfs_passes () =
  let sys = Check.Harness.kernel_system () in
  match Check.Explore.check_dfs ~max_runs:25 ~max_depth:10 sys with
  | Check.Explore.Passed s ->
      check Alcotest.bool "distinct kernel schedules" true
        (s.Check.Explore.distinct > 1)
  | Check.Explore.Failed _ ->
      Alcotest.fail "kernel ping-pong violated the oracle"

(* Bit-identity: booting with the recorded-default strategy must leave
   clock and disk exactly as a kernel with no strategy at all. *)
let low = Aim.Label.system_low
let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

let run_small_workload ~choice =
  let k = K.Kernel.boot { K.Kernel.small_config with K.Kernel.choice } in
  K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
  ignore
    (K.Kernel.spawn k ~pname:"w"
       (K.Workload.concat
          [ [| K.Workload.Create_file { dir = ">home"; name = "f" };
               K.Workload.Initiate { path = ">home>f"; reg = 0 } |];
            K.Workload.sequential_write ~seg_reg:0 ~pages:6 ]));
  ignore
    (K.Kernel.spawn k ~pname:"c"
       (K.Workload.file_churn ~dir:">home" ~files:2 ~pages_each:2 ~seed:3));
  Alcotest.(check bool) "completes" true (K.Kernel.run_to_completion k);
  K.Kernel.shutdown k;
  (k, K.Kernel.now k)

let disk_checksum k =
  let d = (K.Kernel.machine k).Hw.Machine.disk in
  let acc = ref 0 in
  for pack = 0 to Hw.Disk.n_packs d - 1 do
    for record = 0 to Hw.Disk.records_per_pack d - 1 do
      if not (Hw.Disk.record_is_free d ~pack ~record) then
        acc :=
          Hashtbl.hash
            ( !acc, pack, record,
              Array.to_list (Hw.Disk.read_record d ~pack ~record) )
    done
  done;
  !acc

let test_recorded_default_bit_identical () =
  let k_none, t_none = run_small_workload ~choice:None in
  let recorder = Choice.record_default () in
  let k_rec, t_rec = run_small_workload ~choice:(Some recorder) in
  check Alcotest.int "clock identical" t_none t_rec;
  check Alcotest.int "disk identical" (disk_checksum k_none)
    (disk_checksum k_rec);
  check Alcotest.bool "strategy was really consulted" true
    (Choice.decisions recorder > 0)

(* The acceptance bar for the flight recorder: the seeded lost-wakeup
   counterexample ships with a causal dump of the minimal failing
   schedule, whose events carry context chains that reconstruct the
   race — the consumer's wait registered under its own root, and the
   producer's advances never reaching the threshold. *)
let test_counterexample_flight_dump () =
  let buggy = Check.Harness.eventcount_system ~bug:true ~events:2 () in
  match Check.Explore.check_dfs ~max_runs:200 buggy with
  | Check.Explore.Passed _ -> Alcotest.fail "seeded lost wakeup not found"
  | Check.Explore.Failed { f_flight; _ } ->
      let has affix = Astring.String.is_infix ~affix f_flight in
      check Alcotest.bool "dump attached" true (f_flight <> "");
      check Alcotest.bool "dump is a flight recording" true
        (has "flight recorder:");
      (* The race's two sides, each causally attributed to its VP. *)
      check Alcotest.bool "consumer's wait recorded" true (has "ec_wait");
      check Alcotest.bool "producer's advances recorded" true
        (has "ec_advance");
      check Alcotest.bool "wait attributed to the consumer" true
        (has ":consumer");
      check Alcotest.bool "advance attributed to the producer" true
        (has ":producer");
      (* Determinism: replaying the same minimal schedule reproduces
         the identical dump, byte for byte. *)
      (match Check.Explore.check_dfs ~max_runs:200 buggy with
      | Check.Explore.Failed { f_flight = again; _ } ->
          check Alcotest.string "dump is deterministic" f_flight again
      | Check.Explore.Passed _ -> Alcotest.fail "bug vanished on re-run")

(* ------------------------------------------------------------------ *)
(* Circuit breakers under exploration.  The harness drives the I/O
   scheduler directly, so the only choice points are completion
   delivery order and backoff jitter — a space DFS can actually
   close.  The seeded "bug" is a schedule-dependent tuning claim:
   with the trip threshold at the noise floor, the default sweep
   order interleaves a clean read between the two transient faults
   (resetting the consecutive-failure count), but some reordering
   aligns them and trips the breaker. *)

let test_breaker_dfs_passes () =
  let sys = Check.Harness.breaker_system () in
  (match Check.Explore.check_default sys with
  | Check.Explore.Passed _ -> ()
  | Check.Explore.Failed { f_problems; _ } ->
      Alcotest.fail
        ("default breaker schedule violated oracle: "
        ^ String.concat "; " f_problems));
  match Check.Explore.check_dfs ~max_runs:400 sys with
  | Check.Explore.Passed s ->
      check Alcotest.bool "distinct breaker schedules" true
        (s.Check.Explore.distinct > 1);
      check Alcotest.int "space closed" 0 s.Check.Explore.frontier_left
  | Check.Explore.Failed { f_problems; _ } ->
      Alcotest.fail
        ("breaker harness violated oracle: " ^ String.concat "; " f_problems)

let test_breaker_dfs_finds_trip () =
  let buggy = Check.Harness.breaker_system ~bug:true () in
  (* The claim holds under the default sweep order: a clean read lands
     between the two transients, so the breaker never sees two
     consecutive failures.  Exploration is what falsifies it. *)
  (match Check.Explore.check_default buggy with
  | Check.Explore.Passed _ -> ()
  | Check.Explore.Failed _ ->
      Alcotest.fail "claim should hold under the default schedule");
  match Check.Explore.check_dfs ~max_runs:400 buggy with
  | Check.Explore.Passed _ ->
      Alcotest.fail "mis-tuned breaker threshold not found"
  | Check.Explore.Failed { f_problems; f_script; f_events; _ } ->
      check Alcotest.bool "reports the transient trip" true
        (List.exists
           (fun p -> Astring.String.is_infix ~affix:"transient noise" p)
           f_problems);
      check Alcotest.bool "counterexample is not the default schedule" true
        (f_script <> []);
      (* Exact shrinking: the minimal script replays to the identical
         violation and the identical decoded schedule, twice. *)
      let p1, e1 = Check.Explore.replay buggy ~script:f_script in
      let p2, e2 = Check.Explore.replay buggy ~script:f_script in
      check (Alcotest.list Alcotest.string) "same violation" f_problems p1;
      check (Alcotest.list Alcotest.string) "replay deterministic" p1 p2;
      let decode evs =
        List.map
          (fun (ev : Choice.event) -> Format.asprintf "%a" Choice.pp_event ev)
          evs
      in
      check (Alcotest.list Alcotest.string) "same schedule" (decode f_events)
        (decode e1);
      check (Alcotest.list Alcotest.string) "same schedule twice" (decode e1)
        (decode e2);
      let again, _ = Check.Explore.minimize buggy ~script:f_script in
      check Alcotest.bool "minimization never grows the script" true
        (List.length again <= List.length f_script)

let test_minimize_no_longer () =
  let buggy = Check.Harness.eventcount_system ~bug:true ~events:2 () in
  match Check.Explore.check_random ~runs:100 ~seed:1 buggy with
  | Check.Explore.Passed _ -> Alcotest.fail "bug not found"
  | Check.Explore.Failed { f_script; _ } ->
      let again, trials = Check.Explore.minimize buggy ~script:f_script in
      check Alcotest.bool "minimization is idempotent-or-shrinking" true
        (List.length again <= List.length f_script);
      check Alcotest.bool "shrinking spent runs" true (trials >= 0)

let tests =
  [ Alcotest.test_case "choice: inert default" `Quick test_choice_inert;
    Alcotest.test_case "choice: scripted replay + clamping" `Quick
      test_choice_scripted;
    Alcotest.test_case "choice: random is seed-deterministic" `Quick
      test_choice_random_deterministic;
    Alcotest.test_case "choice: reset rewinds" `Quick test_choice_reset;
    Alcotest.test_case "explore: default strategy passes" `Quick
      test_default_strategy_passes;
    Alcotest.test_case "explore: DFS covers the toy space" `Quick
      test_dfs_explores_and_passes;
    Alcotest.test_case "explore: random covers the toy space" `Quick
      test_random_explores_and_passes;
    Alcotest.test_case "explore: DFS finds seeded lost wakeup" `Quick
      test_dfs_finds_lost_wakeup;
    Alcotest.test_case "explore: counterexample replay exact" `Quick
      test_replay_exact;
    Alcotest.test_case "explore: random finds seeded lost wakeup" `Quick
      test_random_finds_lost_wakeup;
    Alcotest.test_case "explore: kernel ping-pong safe" `Quick
      test_kernel_dfs_passes;
    Alcotest.test_case "explore: recorded default bit-identical" `Quick
      test_recorded_default_bit_identical;
    Alcotest.test_case "explore: minimize shrinks" `Quick
      test_minimize_no_longer;
    Alcotest.test_case "explore: counterexample ships flight dump" `Quick
      test_counterexample_flight_dump;
    Alcotest.test_case "explore: breaker space closes clean" `Quick
      test_breaker_dfs_passes;
    Alcotest.test_case "explore: DFS finds mis-tuned breaker" `Quick
      test_breaker_dfs_finds_trip ]
