(* The observability layer: the ring buffer, the log2 histograms, the
   sink's three modes, the lock/eventcount latency plumbing, meter
   snapshots, tracer determinism — and the property everything else
   rests on: tracing never moves the simulated clock. *)

module K = Multics_kernel
module Hw = Multics_hw
module Obs = Multics_obs
module Sync = Multics_sync
module Aim = Multics_aim

let check = Alcotest.check

(* A sink over a hand-cranked clock, so latencies are exact. *)
let rig ?(mode = Obs.Sink.Full) () =
  let clock = ref 0 in
  let sink = Obs.Sink.create ~mode ~now:(fun () -> !clock) () in
  (clock, sink)

(* ------------------------------------------------------------------ *)
(* Ring buffer: bounded, oldest-first iteration, overwrite accounting. *)

let ev t name =
  { Obs.Trace_buf.ev_time = t; ev_phase = Obs.Trace_buf.Instant;
    ev_cat = "t"; ev_name = name; ev_tid = 0; ev_id = 0; ev_arg = 0;
    ev_ctx = 0 }

let test_ring_wraparound () =
  let buf = Obs.Trace_buf.create ~capacity:4 () in
  check Alcotest.int "empty" 0 (Obs.Trace_buf.length buf);
  List.iteri
    (fun i name -> Obs.Trace_buf.record buf (ev i name))
    [ "a"; "b"; "c"; "d"; "e"; "f" ];
  check Alcotest.int "bounded" 4 (Obs.Trace_buf.length buf);
  check Alcotest.int "two overwritten" 2 (Obs.Trace_buf.dropped buf);
  check
    Alcotest.(list string)
    "oldest first, oldest gone"
    [ "c"; "d"; "e"; "f" ]
    (List.map
       (fun e -> e.Obs.Trace_buf.ev_name)
       (Obs.Trace_buf.events buf));
  Obs.Trace_buf.clear buf;
  check Alcotest.int "cleared" 0 (Obs.Trace_buf.length buf)

(* ------------------------------------------------------------------ *)
(* Histograms: log2 bucket edges, percentiles, max. *)

let test_histo_buckets () =
  let h = Obs.Histo.create ~name:"t" in
  (* 0 and 1 share bucket 0; 2..3 bucket 1; 1024..2047 bucket 10. *)
  List.iter (Obs.Histo.add h) [ 0; 1; 2; 3; 1024; 2047 ];
  check Alcotest.int "samples" 6 (Obs.Histo.count h);
  check Alcotest.int "max" 2047 (Obs.Histo.max_value h);
  check
    Alcotest.(list (triple int int int))
    "bucket edges"
    [ (0, 1, 2); (2, 3, 2); (1024, 2047, 2) ]
    (Obs.Histo.buckets h)

let test_histo_percentiles () =
  let h = Obs.Histo.create ~name:"t" in
  (* 90 samples in [0,1], 10 at exactly 5000 (bucket 4096..8191). *)
  for _ = 1 to 90 do Obs.Histo.add h 1 done;
  for _ = 1 to 10 do Obs.Histo.add h 5000 done;
  check Alcotest.int "p50 in low bucket" 1 (Obs.Histo.percentile h ~pct:50);
  check Alcotest.int "p90 in low bucket" 1 (Obs.Histo.percentile h ~pct:90);
  (* p95 lands among the 5000s; reported as bucket-high clamped to max. *)
  check Alcotest.int "p95 in high bucket" 5000
    (Obs.Histo.percentile h ~pct:95);
  check Alcotest.int "p100 = max" 5000 (Obs.Histo.percentile h ~pct:100);
  check Alcotest.int "empty histo p50" 0
    (Obs.Histo.percentile (Obs.Histo.create ~name:"e") ~pct:50)

(* ------------------------------------------------------------------ *)
(* Sink modes.  Off records nothing at all; Counters counts and times
   but keeps the ring empty; Full records the ring too. *)

let test_sink_off () =
  let clock, sink = rig ~mode:Obs.Sink.Off () in
  Obs.Sink.count sink "x";
  let sp = Obs.Sink.span_begin sink ~cat:"c" ~name:"n" () in
  clock := 500;
  Obs.Sink.span_end sink ~histo:"h" sp;
  Obs.Sink.instant sink ~cat:"c" ~name:"i" ();
  Obs.Sink.add_latency sink ~name:"h" 99;
  check Alcotest.bool "not counting" false (Obs.Sink.counting sink);
  check Alcotest.(list (pair string int)) "no counters" []
    (Obs.Sink.counters sink);
  check Alcotest.int "no histos" 0 (List.length (Obs.Sink.histos sink));
  check Alcotest.int "empty ring" 0
    (Obs.Trace_buf.length (Obs.Sink.buf sink))

let test_sink_counters_mode () =
  let clock, sink = rig ~mode:Obs.Sink.Counters () in
  Obs.Sink.count sink "x";
  Obs.Sink.count sink "x";
  let sp = Obs.Sink.span_begin sink ~cat:"c" ~name:"n" () in
  clock := 700;
  Obs.Sink.span_end sink ~histo:"h" sp;
  check
    Alcotest.(list (pair string int))
    "counter bumped" [ ("x", 2) ] (Obs.Sink.counters sink);
  let h = Obs.Sink.histo sink ~name:"h" in
  check Alcotest.int "span timed" 700 (Obs.Histo.max_value h);
  check Alcotest.int "ring stays empty" 0
    (Obs.Trace_buf.length (Obs.Sink.buf sink))

let test_sink_full_nesting () =
  let clock, sink = rig () in
  let outer = Obs.Sink.span_begin sink ~cat:"a" ~name:"outer" () in
  clock := 10;
  let inner = Obs.Sink.span_begin sink ~cat:"a" ~name:"inner" () in
  clock := 20;
  Obs.Sink.span_end sink inner;
  clock := 30;
  Obs.Sink.span_end sink outer;
  let phases =
    List.map
      (fun e -> (e.Obs.Trace_buf.ev_phase, e.Obs.Trace_buf.ev_time))
      (Obs.Trace_buf.events (Obs.Sink.buf sink))
  in
  check Alcotest.int "four events" 4 (List.length phases);
  check Alcotest.bool "B B E E" true
    (phases
    = [ (Obs.Trace_buf.Span_begin, 0); (Obs.Trace_buf.Span_begin, 10);
        (Obs.Trace_buf.Span_end, 20); (Obs.Trace_buf.Span_end, 30) ]);
  (* The timeline export indents the inner span under the outer. *)
  let text =
    Format.asprintf "%a" Obs.Trace_export.pp_timeline (Obs.Sink.buf sink)
  in
  let has sub =
    Astring.String.find_sub ~sub text <> None
  in
  check Alcotest.bool "outer at margin" true (has "t0  >  a:outer");
  check Alcotest.bool "inner indented" true (has "t0    >  a:inner")

let test_chrome_json_pairs () =
  let clock, sink = rig () in
  Obs.Sink.async_begin sink ~cat:"io" ~name:"batch" ~id:7 ();
  clock := 1500;
  Obs.Sink.async_end sink ~cat:"io" ~name:"batch" ~id:7 ();
  Obs.Sink.count sink "c";
  let json =
    Obs.Trace_export.chrome_json
      ~counters:(Obs.Sink.counters sink)
      (Obs.Sink.buf sink)
  in
  let has sub = Astring.String.find_sub ~sub json <> None in
  check Alcotest.bool "async begin" true (has "\"ph\":\"b\"");
  check Alcotest.bool "async end" true (has "\"ph\":\"e\"");
  check Alcotest.bool "id paired" true (has "\"id\":7");
  check Alcotest.bool "microsecond ts" true (has "\"ts\":1.500")

(* ------------------------------------------------------------------ *)
(* Lock hold / wait plumbing over the fake clock. *)

let test_lock_hold_time () =
  let clock, sink = rig ~mode:Obs.Sink.Counters () in
  let lk = Sync.Lock.create ~name:"ptl" ~obs:sink () in
  check Alcotest.bool "acquired" true (Sync.Lock.try_acquire lk ~owner:"a");
  check Alcotest.bool "contended" false (Sync.Lock.try_acquire lk ~owner:"b");
  let woke = ref false in
  check Alcotest.bool "queued" false
    (Sync.Lock.acquire_or_wait lk ~owner:"c" ~notify:(fun () ->
         woke := true));
  clock := 4_000;
  Sync.Lock.release lk;
  check Alcotest.bool "handed off" true !woke;
  clock := 5_000;
  Sync.Lock.release lk;
  let hold = Obs.Sink.histo sink ~name:"lock.hold:ptl" in
  let wait = Obs.Sink.histo sink ~name:"lock.wait:ptl" in
  check Alcotest.int "two holds" 2 (Obs.Histo.count hold);
  check Alcotest.int "first hold 4000" 4_000 (Obs.Histo.max_value hold);
  check Alcotest.int "c waited 4000" 4_000 (Obs.Histo.max_value wait);
  check
    Alcotest.(list (pair string int))
    "counters"
    [ ("lock.acquire", 2); ("lock.contention", 2) ]
    (Obs.Sink.counters sink)

let test_ec_wait_time () =
  let clock, sink = rig ~mode:Obs.Sink.Counters () in
  let ec = Sync.Eventcount.create ~name:"work" ~obs:sink () in
  let woke = ref 0 in
  check Alcotest.bool "waits" false
    (Sync.Eventcount.await ec ~value:1 ~notify:(fun () -> incr woke));
  clock := 2_500;
  Sync.Eventcount.advance ec;
  check Alcotest.int "woken" 1 !woke;
  let h = Obs.Sink.histo sink ~name:"ec.wait:work" in
  check Alcotest.int "one wait sample" 1 (Obs.Histo.count h);
  check Alcotest.int "waited 2500" 2_500 (Obs.Histo.max_value h)

(* ------------------------------------------------------------------ *)
(* Meter snapshots. *)

let test_meter_snapshot_diff () =
  let m = K.Meter.create () in
  K.Meter.charge_raw m ~manager:"pfm" 100;
  K.Meter.charge_raw m ~manager:"gate" 40;
  let before = K.Meter.snapshot m in
  K.Meter.charge_raw m ~manager:"pfm" 60;
  let after = K.Meter.snapshot m in
  let d = K.Meter.diff ~before ~after in
  check Alcotest.int "delta total" 60 d.K.Meter.snap_total;
  check
    Alcotest.(list (pair string int))
    "only moved managers" [ ("pfm", 60) ] d.K.Meter.snap_managers

(* ------------------------------------------------------------------ *)
(* Tracer: deterministic output order, and the trace-buffer bridge. *)

let test_tracer_deterministic () =
  let tr = K.Tracer.create () in
  K.Tracer.note_cache tr ~cache:"sdw" ~event:"hit";
  K.Tracer.note_cache tr ~cache:"path" ~event:"miss";
  K.Tracer.note_cache tr ~cache:"sdw" ~event:"hit";
  check
    Alcotest.(list (pair string int))
    "cache events sorted"
    [ ("path:miss", 1); ("sdw:hit", 2) ]
    (K.Tracer.cache_events tr);
  K.Tracer.call tr ~from:"gate" ~to_:"pfm";
  K.Tracer.call tr ~from:"gate" ~to_:"pfm";
  K.Tracer.call tr ~from:"dir" ~to_:"seg";
  let buf = Obs.Trace_buf.create ~capacity:64 () in
  K.Tracer.to_trace_buf tr ~now:99 ~buf;
  let names =
    List.filter_map
      (fun e ->
        if e.Obs.Trace_buf.ev_cat = "dep" then
          Some (e.Obs.Trace_buf.ev_name, e.Obs.Trace_buf.ev_arg)
        else None)
      (Obs.Trace_buf.events buf)
  in
  check
    Alcotest.(list (pair string int))
    "edges bridged in order"
    [ ("dir->seg", 1); ("gate->pfm", 2) ]
    names

(* ------------------------------------------------------------------ *)
(* The tentpole invariant: booting with tracing Off and Full runs the
   same workload to the same simulated nanosecond. *)

let low = Aim.Label.system_low
let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

let run_small mode =
  let config = { K.Kernel.small_config with K.Kernel.trace = mode } in
  let k = K.Kernel.boot config in
  K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
  let writer =
    K.Workload.concat
      [ [| K.Workload.Create_file { dir = ">home"; name = "f" };
           K.Workload.Initiate { path = ">home>f"; reg = 0 } |];
        K.Workload.sequential_write ~seg_reg:0 ~pages:12 ]
  in
  ignore (K.Kernel.spawn k ~pname:"w" writer);
  check Alcotest.bool "completes" true (K.Kernel.run_to_completion k);
  let t = K.Kernel.now k in
  K.Kernel.shutdown k;
  (t, k)

let test_trace_clock_neutral () =
  let t_off, _ = run_small Obs.Sink.Off in
  let t_full, k = run_small Obs.Sink.Full in
  check Alcotest.int "identical clocks" t_off t_full;
  check Alcotest.bool "ring saw events" true
    (Obs.Trace_buf.length (Obs.Sink.buf (K.Kernel.obs k)) > 0);
  check Alcotest.bool "histos populated" true
    (Obs.Sink.histos (K.Kernel.obs k) <> []);
  (* The reports render without blowing up. *)
  check Alcotest.bool "histo report" true
    (String.length (K.Kernel.histo_report k) > 0);
  check Alcotest.bool "timeline" true
    (String.length (K.Kernel.trace_report k) > 0);
  check Alcotest.bool "chrome trace" true
    (String.length (K.Kernel.chrome_trace k) > 0)

(* ------------------------------------------------------------------ *)
(* Request contexts: allocation discipline and causal propagation. *)

let test_ctx_off_allocation_free () =
  let sink = Obs.Sink.create ~mode:Obs.Sink.Off ~now:(fun () -> 0) () in
  ignore (Obs.Sink.new_ctx sink ~origin:"warmup" ());
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    ignore (Obs.Sink.new_ctx sink ~origin:"req" ())
  done;
  let delta = Gc.minor_words () -. before in
  (* A handful of words of slack for the boxed floats of the
     measurement itself; the ctx path must contribute nothing. *)
  check Alcotest.bool "allocation-free in Off mode" true (delta < 64.0);
  check Alcotest.int "no ids handed out" 0 (Obs.Sink.ctx_count sink)

let test_ctx_basics () =
  let _, sink = rig ~mode:Obs.Sink.Counters () in
  let root = Obs.Sink.new_ctx sink ~parent:0 ~origin:"alice" () in
  Obs.Sink.set_current sink root;
  let child = Obs.Sink.new_ctx sink ~origin:"hcs_$initiate" () in
  let grand = Obs.Sink.new_ctx sink ~parent:child ~origin:"missing_page" () in
  check Alcotest.int "parent defaulted to current" root
    (Obs.Sink.ctx_parent sink child);
  check Alcotest.int "root precomputed" root (Obs.Sink.ctx_root sink grand);
  check (Alcotest.list Alcotest.int) "chain leaf to root"
    [ grand; child; root ]
    (Obs.Sink.ctx_chain sink grand);
  check Alcotest.string "origin kept" "alice" (Obs.Sink.ctx_origin sink root);
  Obs.Sink.set_current sink grand;
  Obs.Sink.instant sink ~cat:"t" ~name:"stamped" ();
  let evs = Obs.Trace_buf.events (Obs.Sink.flight sink) in
  check Alcotest.bool "event stamped with ambient ctx" true
    (List.exists (fun e -> e.Obs.Trace_buf.ev_ctx = grand) evs);
  Obs.Sink.attribute sink ~ctx:grand ~cpu_ns:70 ~ios:2;
  Obs.Sink.attribute sink ~ctx:child ~cpu_ns:30 ~ios:1;
  check
    Alcotest.(list (pair string (pair int int)))
    "usage joined to the root origin"
    [ ("alice", (100, 3)) ]
    (Obs.Sink.by_user sink)

(* The cramped machine from the I/O tests: 40 pageable frames, a
   48-page file written then read back, so the read pass faults, the
   elevator serves it, and read-ahead prefetches.  Every record's
   first read fails once, so servicing also includes retries. *)
let ctx_kernel () =
  let faults = Hw.Fault_inject.create () in
  for pack = 0 to 3 do
    for record = 0 to 1023 do
      Hw.Fault_inject.fail_reads faults ~pack ~record ~times:1
    done
  done;
  let config =
    { K.Kernel.default_config with
      K.Kernel.hw = Hw.Hw_config.with_frames Hw.Hw_config.kernel_multics 64;
      core_frames = 24; trace = Obs.Sink.Full; faults }
  in
  let k = K.Kernel.boot config in
  K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
  ignore
    (K.Kernel.spawn k ~pname:"writer"
       (K.Workload.concat
          [ [| K.Workload.Create_file { dir = ">home"; name = "f" };
               K.Workload.Initiate { path = ">home>f"; reg = 0 } |];
            K.Workload.sequential_write ~seg_reg:0 ~pages:48 ]));
  check Alcotest.bool "writer completed" true (K.Kernel.run_to_completion k);
  ignore
    (K.Kernel.spawn k ~pname:"reader"
       (K.Workload.concat
          [ [| K.Workload.Initiate { path = ">home>f"; reg = 0 } |];
            K.Workload.sequential_read ~seg_reg:0 ~pages:48 ]));
  check Alcotest.bool "reader completed" true (K.Kernel.run_to_completion k);
  k

let test_ctx_propagation () =
  let k = ctx_kernel () in
  let obs = K.Kernel.obs k in
  let events = Obs.Trace_buf.events (Obs.Sink.buf obs) in
  let chain_has origin ctx =
    List.exists
      (fun id -> Obs.Sink.ctx_origin obs id = origin)
      (Obs.Sink.ctx_chain obs ctx)
  in
  let rooted_in_user ctx =
    Obs.Sink.ctx_origin obs (Obs.Sink.ctx_root obs ctx) = "user"
  in
  let find phase cat name =
    List.filter
      (fun e ->
        e.Obs.Trace_buf.ev_phase = phase
        && e.Obs.Trace_buf.ev_cat = cat
        && e.Obs.Trace_buf.ev_name = name)
      events
  in
  (* 1. The async page read carries the faulting request's context:
     through the fault ctx up to the user's root. *)
  let reads = find Obs.Trace_buf.Async_begin "pfm" "page_read" in
  check Alcotest.bool "page reads traced" true (reads <> []);
  let demand =
    List.filter
      (fun e ->
        e.Obs.Trace_buf.ev_ctx <> 0
        && chain_has "missing_page" e.Obs.Trace_buf.ev_ctx
        && not (chain_has "read_ahead" e.Obs.Trace_buf.ev_ctx))
      reads
  in
  check Alcotest.bool "demand read carries the fault ctx" true (demand <> []);
  check Alcotest.bool "demand read joins to the user" true
    (List.for_all (fun e -> rooted_in_user e.Obs.Trace_buf.ev_ctx) demand);
  (* 2. A transient read error's retry still serves the same request. *)
  let retries = find Obs.Trace_buf.Instant "io" "retry" in
  check Alcotest.bool "retries traced" true (retries <> []);
  check Alcotest.bool "some retry chains to a page fault" true
    (List.exists
       (fun e ->
         e.Obs.Trace_buf.ev_ctx <> 0
         && chain_has "missing_page" e.Obs.Trace_buf.ev_ctx
         && rooted_in_user e.Obs.Trace_buf.ev_ctx)
       retries);
  (* 3. Read-ahead spawned on the request's behalf is a CHILD of the
     faulting context, so attribution and causality both hold. *)
  let prefetches = find Obs.Trace_buf.Instant "pfm" "read_ahead" in
  check Alcotest.bool "read-ahead traced" true (prefetches <> []);
  check Alcotest.bool "read-ahead is a child of the fault" true
    (List.exists
       (fun e ->
         let ctx = e.Obs.Trace_buf.ev_ctx in
         ctx <> 0
         && Obs.Sink.ctx_origin obs ctx = "read_ahead"
         && chain_has "missing_page" ctx
         && rooted_in_user ctx)
       prefetches);
  (* 4. The join shows up in accounting: the default principal owns
     both cpu time and I/Os. *)
  let users = K.Meter.snapshot (K.Kernel.meter k) in
  (match List.assoc_opt "user" users.K.Meter.snap_users with
  | None -> Alcotest.fail "no per-user attribution row"
  | Some (cpu_ns, ios) ->
      check Alcotest.bool "cpu attributed" true (cpu_ns > 0);
      check Alcotest.bool "ios attributed" true (ios > 0))

(* Critical-path extraction over a hand-built causal tree: root 1 with
   children 2 and 3; 3's work finishes last, so the path is 1 -> 3. *)
let test_critical_path () =
  let buf = Obs.Trace_buf.create ~capacity:16 () in
  let stamp t ctx =
    Obs.Trace_buf.record buf { (ev t "e") with Obs.Trace_buf.ev_ctx = ctx }
  in
  stamp 0 1;
  stamp 10 2;
  stamp 20 2;
  stamp 15 3;
  stamp 40 3;
  stamp 30 1;
  let parent_of = function 2 | 3 -> 1 | _ -> 0 in
  check
    Alcotest.(list (triple int int int))
    "path is root then the late child"
    [ (1, 0, 30); (3, 15, 40) ]
    (Obs.Trace_export.critical_path ~parent_of buf ~ctx:1);
  check
    Alcotest.(list (triple int int int))
    "a leaf's path is itself"
    [ (2, 10, 20) ]
    (Obs.Trace_export.critical_path ~parent_of buf ~ctx:2)

(* ------------------------------------------------------------------ *)
(* SLO watchdogs: breaches fire deterministically — same simulated
   instant across two identical runs, and identical whatever the
   domain count used to run them. *)

let slo_signature () =
  let k = ctx_kernel () in
  let obs = K.Kernel.obs k in
  (* Re-arm low thresholds so the cramped run is guaranteed to breach;
     re-arming resets the view, so the signature is pure. *)
  Obs.Sink.set_slo obs ~histo:"pfm.page_read" ~threshold_ns:1_000;
  ignore
    (K.Kernel.spawn k ~pname:"again"
       (K.Workload.concat
          [ [| K.Workload.Initiate { path = ">home>f"; reg = 0 } |];
            K.Workload.sequential_read ~seg_reg:0 ~pages:48 ]));
  check Alcotest.bool "completes" true (K.Kernel.run_to_completion k);
  K.Kernel.slo_report k

let test_slo_deterministic () =
  let a = slo_signature () in
  check Alcotest.bool "watchdogs fired" true
    (Astring.String.is_infix ~affix:"breaches" a);
  let b = slo_signature () in
  check Alcotest.string "two runs, same breaches at the same instants" a b;
  let under domains =
    Multics_par.Par.run ~domains ~tasks:2 (fun _ -> slo_signature ())
  in
  check
    Alcotest.(list string)
    "domains 1 vs 4 byte-identical"
    (Array.to_list (under 1))
    (Array.to_list (under 4))

let tests =
  [ Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "histo bucket edges" `Quick test_histo_buckets;
    Alcotest.test_case "histo percentiles" `Quick test_histo_percentiles;
    Alcotest.test_case "sink off is inert" `Quick test_sink_off;
    Alcotest.test_case "counters mode" `Quick test_sink_counters_mode;
    Alcotest.test_case "span nesting + timeline" `Quick
      test_sink_full_nesting;
    Alcotest.test_case "chrome json pairs" `Quick test_chrome_json_pairs;
    Alcotest.test_case "lock hold/wait histograms" `Quick
      test_lock_hold_time;
    Alcotest.test_case "eventcount wait histogram" `Quick test_ec_wait_time;
    Alcotest.test_case "meter snapshot diff" `Quick test_meter_snapshot_diff;
    Alcotest.test_case "tracer deterministic + bridge" `Quick
      test_tracer_deterministic;
    Alcotest.test_case "trace off/on clock equality" `Quick
      test_trace_clock_neutral;
    Alcotest.test_case "ctx alloc-free when off" `Quick
      test_ctx_off_allocation_free;
    Alcotest.test_case "ctx chains + attribution" `Quick test_ctx_basics;
    Alcotest.test_case "ctx crosses faults, retries, read-ahead" `Quick
      test_ctx_propagation;
    Alcotest.test_case "critical path extraction" `Quick test_critical_path;
    Alcotest.test_case "slo watchdogs deterministic" `Quick
      test_slo_deterministic ]
