(* The observability layer: the ring buffer, the log2 histograms, the
   sink's three modes, the lock/eventcount latency plumbing, meter
   snapshots, tracer determinism — and the property everything else
   rests on: tracing never moves the simulated clock. *)

module K = Multics_kernel
module Hw = Multics_hw
module Obs = Multics_obs
module Sync = Multics_sync
module Aim = Multics_aim

let check = Alcotest.check

(* A sink over a hand-cranked clock, so latencies are exact. *)
let rig ?(mode = Obs.Sink.Full) () =
  let clock = ref 0 in
  let sink = Obs.Sink.create ~mode ~now:(fun () -> !clock) () in
  (clock, sink)

(* ------------------------------------------------------------------ *)
(* Ring buffer: bounded, oldest-first iteration, overwrite accounting. *)

let ev t name =
  { Obs.Trace_buf.ev_time = t; ev_phase = Obs.Trace_buf.Instant;
    ev_cat = "t"; ev_name = name; ev_tid = 0; ev_id = 0; ev_arg = 0 }

let test_ring_wraparound () =
  let buf = Obs.Trace_buf.create ~capacity:4 () in
  check Alcotest.int "empty" 0 (Obs.Trace_buf.length buf);
  List.iteri
    (fun i name -> Obs.Trace_buf.record buf (ev i name))
    [ "a"; "b"; "c"; "d"; "e"; "f" ];
  check Alcotest.int "bounded" 4 (Obs.Trace_buf.length buf);
  check Alcotest.int "two overwritten" 2 (Obs.Trace_buf.dropped buf);
  check
    Alcotest.(list string)
    "oldest first, oldest gone"
    [ "c"; "d"; "e"; "f" ]
    (List.map
       (fun e -> e.Obs.Trace_buf.ev_name)
       (Obs.Trace_buf.events buf));
  Obs.Trace_buf.clear buf;
  check Alcotest.int "cleared" 0 (Obs.Trace_buf.length buf)

(* ------------------------------------------------------------------ *)
(* Histograms: log2 bucket edges, percentiles, max. *)

let test_histo_buckets () =
  let h = Obs.Histo.create ~name:"t" in
  (* 0 and 1 share bucket 0; 2..3 bucket 1; 1024..2047 bucket 10. *)
  List.iter (Obs.Histo.add h) [ 0; 1; 2; 3; 1024; 2047 ];
  check Alcotest.int "samples" 6 (Obs.Histo.count h);
  check Alcotest.int "max" 2047 (Obs.Histo.max_value h);
  check
    Alcotest.(list (triple int int int))
    "bucket edges"
    [ (0, 1, 2); (2, 3, 2); (1024, 2047, 2) ]
    (Obs.Histo.buckets h)

let test_histo_percentiles () =
  let h = Obs.Histo.create ~name:"t" in
  (* 90 samples in [0,1], 10 at exactly 5000 (bucket 4096..8191). *)
  for _ = 1 to 90 do Obs.Histo.add h 1 done;
  for _ = 1 to 10 do Obs.Histo.add h 5000 done;
  check Alcotest.int "p50 in low bucket" 1 (Obs.Histo.percentile h ~pct:50);
  check Alcotest.int "p90 in low bucket" 1 (Obs.Histo.percentile h ~pct:90);
  (* p95 lands among the 5000s; reported as bucket-high clamped to max. *)
  check Alcotest.int "p95 in high bucket" 5000
    (Obs.Histo.percentile h ~pct:95);
  check Alcotest.int "p100 = max" 5000 (Obs.Histo.percentile h ~pct:100);
  check Alcotest.int "empty histo p50" 0
    (Obs.Histo.percentile (Obs.Histo.create ~name:"e") ~pct:50)

(* ------------------------------------------------------------------ *)
(* Sink modes.  Off records nothing at all; Counters counts and times
   but keeps the ring empty; Full records the ring too. *)

let test_sink_off () =
  let clock, sink = rig ~mode:Obs.Sink.Off () in
  Obs.Sink.count sink "x";
  let sp = Obs.Sink.span_begin sink ~cat:"c" ~name:"n" () in
  clock := 500;
  Obs.Sink.span_end sink ~histo:"h" sp;
  Obs.Sink.instant sink ~cat:"c" ~name:"i" ();
  Obs.Sink.add_latency sink ~name:"h" 99;
  check Alcotest.bool "not counting" false (Obs.Sink.counting sink);
  check Alcotest.(list (pair string int)) "no counters" []
    (Obs.Sink.counters sink);
  check Alcotest.int "no histos" 0 (List.length (Obs.Sink.histos sink));
  check Alcotest.int "empty ring" 0
    (Obs.Trace_buf.length (Obs.Sink.buf sink))

let test_sink_counters_mode () =
  let clock, sink = rig ~mode:Obs.Sink.Counters () in
  Obs.Sink.count sink "x";
  Obs.Sink.count sink "x";
  let sp = Obs.Sink.span_begin sink ~cat:"c" ~name:"n" () in
  clock := 700;
  Obs.Sink.span_end sink ~histo:"h" sp;
  check
    Alcotest.(list (pair string int))
    "counter bumped" [ ("x", 2) ] (Obs.Sink.counters sink);
  let h = Obs.Sink.histo sink ~name:"h" in
  check Alcotest.int "span timed" 700 (Obs.Histo.max_value h);
  check Alcotest.int "ring stays empty" 0
    (Obs.Trace_buf.length (Obs.Sink.buf sink))

let test_sink_full_nesting () =
  let clock, sink = rig () in
  let outer = Obs.Sink.span_begin sink ~cat:"a" ~name:"outer" () in
  clock := 10;
  let inner = Obs.Sink.span_begin sink ~cat:"a" ~name:"inner" () in
  clock := 20;
  Obs.Sink.span_end sink inner;
  clock := 30;
  Obs.Sink.span_end sink outer;
  let phases =
    List.map
      (fun e -> (e.Obs.Trace_buf.ev_phase, e.Obs.Trace_buf.ev_time))
      (Obs.Trace_buf.events (Obs.Sink.buf sink))
  in
  check Alcotest.int "four events" 4 (List.length phases);
  check Alcotest.bool "B B E E" true
    (phases
    = [ (Obs.Trace_buf.Span_begin, 0); (Obs.Trace_buf.Span_begin, 10);
        (Obs.Trace_buf.Span_end, 20); (Obs.Trace_buf.Span_end, 30) ]);
  (* The timeline export indents the inner span under the outer. *)
  let text =
    Format.asprintf "%a" Obs.Trace_export.pp_timeline (Obs.Sink.buf sink)
  in
  let has sub =
    Astring.String.find_sub ~sub text <> None
  in
  check Alcotest.bool "outer at margin" true (has "t0  >  a:outer");
  check Alcotest.bool "inner indented" true (has "t0    >  a:inner")

let test_chrome_json_pairs () =
  let clock, sink = rig () in
  Obs.Sink.async_begin sink ~cat:"io" ~name:"batch" ~id:7 ();
  clock := 1500;
  Obs.Sink.async_end sink ~cat:"io" ~name:"batch" ~id:7 ();
  Obs.Sink.count sink "c";
  let json =
    Obs.Trace_export.chrome_json
      ~counters:(Obs.Sink.counters sink)
      (Obs.Sink.buf sink)
  in
  let has sub = Astring.String.find_sub ~sub json <> None in
  check Alcotest.bool "async begin" true (has "\"ph\":\"b\"");
  check Alcotest.bool "async end" true (has "\"ph\":\"e\"");
  check Alcotest.bool "id paired" true (has "\"id\":7");
  check Alcotest.bool "microsecond ts" true (has "\"ts\":1.500")

(* ------------------------------------------------------------------ *)
(* Lock hold / wait plumbing over the fake clock. *)

let test_lock_hold_time () =
  let clock, sink = rig ~mode:Obs.Sink.Counters () in
  let lk = Sync.Lock.create ~name:"ptl" ~obs:sink () in
  check Alcotest.bool "acquired" true (Sync.Lock.try_acquire lk ~owner:"a");
  check Alcotest.bool "contended" false (Sync.Lock.try_acquire lk ~owner:"b");
  let woke = ref false in
  check Alcotest.bool "queued" false
    (Sync.Lock.acquire_or_wait lk ~owner:"c" ~notify:(fun () ->
         woke := true));
  clock := 4_000;
  Sync.Lock.release lk;
  check Alcotest.bool "handed off" true !woke;
  clock := 5_000;
  Sync.Lock.release lk;
  let hold = Obs.Sink.histo sink ~name:"lock.hold:ptl" in
  let wait = Obs.Sink.histo sink ~name:"lock.wait:ptl" in
  check Alcotest.int "two holds" 2 (Obs.Histo.count hold);
  check Alcotest.int "first hold 4000" 4_000 (Obs.Histo.max_value hold);
  check Alcotest.int "c waited 4000" 4_000 (Obs.Histo.max_value wait);
  check
    Alcotest.(list (pair string int))
    "counters"
    [ ("lock.acquire", 2); ("lock.contention", 2) ]
    (Obs.Sink.counters sink)

let test_ec_wait_time () =
  let clock, sink = rig ~mode:Obs.Sink.Counters () in
  let ec = Sync.Eventcount.create ~name:"work" ~obs:sink () in
  let woke = ref 0 in
  check Alcotest.bool "waits" false
    (Sync.Eventcount.await ec ~value:1 ~notify:(fun () -> incr woke));
  clock := 2_500;
  Sync.Eventcount.advance ec;
  check Alcotest.int "woken" 1 !woke;
  let h = Obs.Sink.histo sink ~name:"ec.wait:work" in
  check Alcotest.int "one wait sample" 1 (Obs.Histo.count h);
  check Alcotest.int "waited 2500" 2_500 (Obs.Histo.max_value h)

(* ------------------------------------------------------------------ *)
(* Meter snapshots. *)

let test_meter_snapshot_diff () =
  let m = K.Meter.create () in
  K.Meter.charge_raw m ~manager:"pfm" 100;
  K.Meter.charge_raw m ~manager:"gate" 40;
  let before = K.Meter.snapshot m in
  K.Meter.charge_raw m ~manager:"pfm" 60;
  let after = K.Meter.snapshot m in
  let d = K.Meter.diff ~before ~after in
  check Alcotest.int "delta total" 60 d.K.Meter.snap_total;
  check
    Alcotest.(list (pair string int))
    "only moved managers" [ ("pfm", 60) ] d.K.Meter.snap_managers

(* ------------------------------------------------------------------ *)
(* Tracer: deterministic output order, and the trace-buffer bridge. *)

let test_tracer_deterministic () =
  let tr = K.Tracer.create () in
  K.Tracer.note_cache tr ~cache:"sdw" ~event:"hit";
  K.Tracer.note_cache tr ~cache:"path" ~event:"miss";
  K.Tracer.note_cache tr ~cache:"sdw" ~event:"hit";
  check
    Alcotest.(list (pair string int))
    "cache events sorted"
    [ ("path:miss", 1); ("sdw:hit", 2) ]
    (K.Tracer.cache_events tr);
  K.Tracer.call tr ~from:"gate" ~to_:"pfm";
  K.Tracer.call tr ~from:"gate" ~to_:"pfm";
  K.Tracer.call tr ~from:"dir" ~to_:"seg";
  let buf = Obs.Trace_buf.create ~capacity:64 () in
  K.Tracer.to_trace_buf tr ~now:99 ~buf;
  let names =
    List.filter_map
      (fun e ->
        if e.Obs.Trace_buf.ev_cat = "dep" then
          Some (e.Obs.Trace_buf.ev_name, e.Obs.Trace_buf.ev_arg)
        else None)
      (Obs.Trace_buf.events buf)
  in
  check
    Alcotest.(list (pair string int))
    "edges bridged in order"
    [ ("dir->seg", 1); ("gate->pfm", 2) ]
    names

(* ------------------------------------------------------------------ *)
(* The tentpole invariant: booting with tracing Off and Full runs the
   same workload to the same simulated nanosecond. *)

let low = Aim.Label.system_low
let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

let run_small mode =
  let config = { K.Kernel.small_config with K.Kernel.trace = mode } in
  let k = K.Kernel.boot config in
  K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
  let writer =
    K.Workload.concat
      [ [| K.Workload.Create_file { dir = ">home"; name = "f" };
           K.Workload.Initiate { path = ">home>f"; reg = 0 } |];
        K.Workload.sequential_write ~seg_reg:0 ~pages:12 ]
  in
  ignore (K.Kernel.spawn k ~pname:"w" writer);
  check Alcotest.bool "completes" true (K.Kernel.run_to_completion k);
  let t = K.Kernel.now k in
  K.Kernel.shutdown k;
  (t, k)

let test_trace_clock_neutral () =
  let t_off, _ = run_small Obs.Sink.Off in
  let t_full, k = run_small Obs.Sink.Full in
  check Alcotest.int "identical clocks" t_off t_full;
  check Alcotest.bool "ring saw events" true
    (Obs.Trace_buf.length (Obs.Sink.buf (K.Kernel.obs k)) > 0);
  check Alcotest.bool "histos populated" true
    (Obs.Sink.histos (K.Kernel.obs k) <> []);
  (* The reports render without blowing up. *)
  check Alcotest.bool "histo report" true
    (String.length (K.Kernel.histo_report k) > 0);
  check Alcotest.bool "timeline" true
    (String.length (K.Kernel.trace_report k) > 0);
  check Alcotest.bool "chrome trace" true
    (String.length (K.Kernel.chrome_trace k) > 0)

let tests =
  [ Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "histo bucket edges" `Quick test_histo_buckets;
    Alcotest.test_case "histo percentiles" `Quick test_histo_percentiles;
    Alcotest.test_case "sink off is inert" `Quick test_sink_off;
    Alcotest.test_case "counters mode" `Quick test_sink_counters_mode;
    Alcotest.test_case "span nesting + timeline" `Quick
      test_sink_full_nesting;
    Alcotest.test_case "chrome json pairs" `Quick test_chrome_json_pairs;
    Alcotest.test_case "lock hold/wait histograms" `Quick
      test_lock_hold_time;
    Alcotest.test_case "eventcount wait histogram" `Quick test_ec_wait_time;
    Alcotest.test_case "meter snapshot diff" `Quick test_meter_snapshot_diff;
    Alcotest.test_case "tracer deterministic + bridge" `Quick
      test_tracer_deterministic;
    Alcotest.test_case "trace off/on clock equality" `Quick
      test_trace_clock_neutral ]
