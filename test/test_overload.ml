(* The overload-control plane: deadlines, retry budgets, circuit
   breakers and brownout, each pinned at its own layer, plus the
   plane's determinism contracts (double runs and the explorer's
   domain-count independence are byte-identical). *)

module K = Multics_kernel
module S = Multics_services
module Hw = Multics_hw
module Aim = Multics_aim
module Obs = Multics_obs
module Check = Multics_check
module Choice = Multics_choice.Choice

let check = Alcotest.check
let low = Aim.Label.system_low
let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

let boot ?(config = K.Kernel.small_config) () =
  let k = K.Kernel.boot config in
  K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
  k

(* A CPU- and paging-heavy session: the knob is [touches]. *)
let busy_program ~i ~touches =
  let name = Printf.sprintf "f%d" i in
  K.Workload.concat
    [ [| K.Workload.Create_file { dir = ">home"; name };
         K.Workload.Initiate { path = ">home>" ^ name; reg = 0 } |];
      K.Workload.sequential_write ~seg_reg:0 ~pages:8;
      K.Workload.random_touches ~seg_reg:0 ~pages:8 ~count:touches
        ~write_pct:25 ~seed:(42 + i) ]

let disk_checksum k =
  let d = (K.Kernel.machine k).Hw.Machine.disk in
  let acc = ref 0 in
  for pack = 0 to Hw.Disk.n_packs d - 1 do
    for record = 0 to Hw.Disk.records_per_pack d - 1 do
      if not (Hw.Disk.record_is_free d ~pack ~record) then
        acc :=
          Hashtbl.hash
            ( !acc, pack, record,
              Array.to_list (Hw.Disk.read_record d ~pack ~record) )
    done
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Deadlines *)

let test_deadline_expires_process () =
  let config =
    { K.Kernel.small_config with
      K.Kernel.overload = Some K.Kernel.default_overload }
  in
  let k = boot ~config () in
  ignore
    (K.Kernel.spawn k ~pname:"slow" ~deadline_ns:50_000
       (busy_program ~i:0 ~touches:400));
  ignore (K.Kernel.spawn k ~pname:"free" (busy_program ~i:1 ~touches:40));
  ignore (K.Kernel.run_to_completion k);
  check Alcotest.int "expired process retired at dispatch" 1
    (K.Kernel.proc_timeouts k);
  let up = K.Kernel.user_process k in
  check Alcotest.int "the deadlined process is the one that failed" 1
    (K.User_process.failed up);
  check Alcotest.int "the undeadlined process finished" 1
    (K.User_process.completed up)

(* A login's deadline is the session's: the spawned process inherits
   the login context's deadline even when the overload config carries
   a (much longer) config-wide default. *)
let test_login_deadline_inherited () =
  let config =
    { K.Kernel.small_config with
      K.Kernel.overload =
        Some
          { K.Kernel.default_overload with
            K.Kernel.ov_deadline_ns = 5_000_000_000 } }
  in
  let k = boot ~config () in
  let svc =
    S.Answering_service.create ~kernel:k ~variant:S.Answering_service.Split
  in
  S.Answering_service.register_user svc ~user:"alice" ~password:"pw"
    ~clearance:low;
  let session_deadline = 200_000 in
  let t_login = K.Kernel.now k in
  match
    S.Answering_service.login ~deadline_ns:session_deadline svc ~user:"alice"
      ~password:"pw"
      ~program:(busy_program ~i:0 ~touches:400)
  with
  | Error _ -> Alcotest.fail "login should succeed"
  | Ok pid ->
      let p = K.User_process.proc (K.Kernel.user_process k) pid in
      let d = Obs.Sink.ctx_deadline (K.Kernel.obs k) p.K.User_process.p_ctx in
      check Alcotest.bool "a deadline is stamped" true (d > 0);
      check Alcotest.bool
        "the ambient login deadline, not the config default" true
        (d <= t_login + session_deadline);
      ignore (K.Kernel.run_to_completion k);
      check Alcotest.int "the session expired at the login's deadline" 1
        (K.Kernel.proc_timeouts k)

(* ------------------------------------------------------------------ *)
(* Retry budget and jittered backoff, at the I/O scheduler *)

let io_rig ?(budget = 0) ?(jitter = false) ?choice ~fail_times () =
  let hw = Hw.Hw_config.with_cpus Hw.Hw_config.kernel_multics 1 in
  let machine = Hw.Machine.create ~disk_packs:1 ~records_per_pack:8 hw in
  let obs =
    Obs.Sink.create ~mode:Obs.Sink.Counters
      ~now:(fun () -> Hw.Machine.now machine)
      ()
  in
  Hw.Machine.set_obs machine obs;
  let disk = machine.Hw.Machine.disk in
  let faults = Hw.Fault_inject.create () in
  if fail_times > 0 then
    Hw.Fault_inject.fail_reads faults ~pack:0 ~record:0 ~times:fail_times;
  let config =
    { (Hw.Io_sched.config_of_disk disk) with
      Hw.Io_sched.retry_limit = 8;
      retry_budget = budget;
      backoff_jitter = jitter }
  in
  let io =
    Hw.Io_sched.create ~config ~faults ?choice
      ~now:(fun () -> Hw.Machine.now machine)
      ~disk ~schedule:(Hw.Machine.schedule machine) ()
  in
  Hw.Io_sched.set_obs io obs;
  Hw.Disk.write_record disk ~pack:0 ~record:0
    (Array.make Hw.Addr.page_size 7);
  (machine, obs, io)

let test_retry_budget_denies () =
  let machine, obs, io = io_rig ~budget:1 ~fail_times:3 () in
  (* Budgets are charged to the request's root context; ctx 0 (off)
     always passes, so mint one. *)
  let ctx = Obs.Sink.new_ctx obs ~parent:0 ~origin:"test" () in
  Obs.Sink.set_current obs ctx;
  let res = ref None in
  Hw.Io_sched.submit_read io ~pack:0 ~record:0 ~done_:(fun r -> res := Some r);
  Obs.Sink.set_current obs 0;
  Hw.Machine.run machine;
  (match !res with
  | Some (Error Hw.Io_sched.Timed_out) -> ()
  | Some (Ok _) -> Alcotest.fail "read should have been shed"
  | Some (Error e) ->
      Alcotest.fail
        (Format.asprintf "wrong error: %a" Hw.Io_sched.pp_io_error e)
  | None -> Alcotest.fail "read never completed");
  let st = Hw.Io_sched.stats io in
  check Alcotest.bool "a retry was refused by the dry budget" true
    (st.Hw.Io_sched.s_budget_denied >= 1);
  check Alcotest.int "exactly the budgeted retry ran" 1
    st.Hw.Io_sched.s_retries

let test_backoff_jitter_inert_then_scripted () =
  let completion ~jitter ?choice () =
    let machine, _obs, io = io_rig ~jitter ?choice ~fail_times:1 () in
    let done_at = ref (-1) in
    Hw.Io_sched.submit_read io ~pack:0 ~record:0 ~done_:(fun r ->
        (match r with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "transient read should recover");
        done_at := Hw.Machine.now machine);
    Hw.Machine.run machine;
    check Alcotest.bool "read completed" true (!done_at >= 0);
    !done_at
  in
  let plain = completion ~jitter:false () in
  (* The jitter flag without a live strategy draws 0: bit-identical. *)
  check Alcotest.int "jitter armed but inert is free" plain
    (completion ~jitter:true ());
  (* A live strategy picking the largest quarter-step delays the retry. *)
  let jittered =
    completion ~jitter:true ~choice:(Choice.scripted [ 3 ]) ()
  in
  check Alcotest.bool "scripted jitter pushes the retry later" true
    (jittered > plain)

(* ------------------------------------------------------------------ *)
(* Offline windows re-arm *)

let test_offline_windows_rearm () =
  let f = Hw.Fault_inject.create () in
  Hw.Fault_inject.pack_offline f ~pack:0 ~at_ns:100;
  Hw.Fault_inject.pack_online f ~pack:0 ~at_ns:200;
  Hw.Fault_inject.pack_offline f ~pack:0 ~at_ns:300;
  Hw.Fault_inject.pack_online f ~pack:0 ~at_ns:400;
  List.iter
    (fun (t, expect) ->
      check Alcotest.bool
        (Printf.sprintf "offline at %d" t)
        expect
        (Hw.Fault_inject.pack_is_offline f ~pack:0 ~now:t))
    [ (50, false); (150, true); (250, false); (350, true); (450, false) ]

(* ------------------------------------------------------------------ *)
(* Circuit breakers end to end: a pack drops twice; each window trips
   the breaker and raises its own (re-armed) Pack_offline signal, each
   recovery closes it through the half-open probe, and no page is
   damaged — shed reads fall back to their on-disk records. *)

let breaker_pages = 24

let test_kernel_breaker_two_outages () =
  let faults = Hw.Fault_inject.create () in
  let config =
    { K.Kernel.small_config with
      K.Kernel.faults;
      overload =
        Some
          { K.Kernel.default_overload with
            K.Kernel.ov_breaker_threshold = 3;
            ov_breaker_cooldown_ns = 2_000_000 };
      hw = Hw.Hw_config.with_frames Hw.Hw_config.kernel_multics 40;
      core_frames = 24;
      disk_packs = 1;
      records_per_pack = 128;
      use_io_sched = true;
      read_ahead = 2 }
  in
  let k = boot ~config () in
  ignore
    (K.Kernel.spawn k ~pname:"writer"
       (K.Workload.concat
          [ [| K.Workload.Create_file { dir = ">home"; name = "big" };
               K.Workload.Initiate { path = ">home>big"; reg = 0 } |];
            K.Workload.sequential_write ~seg_reg:0 ~pages:breaker_pages ]));
  Alcotest.(check bool) "writer completes" true (K.Kernel.run_to_completion k);
  K.Kernel.checkpoint k;
  let one_pass tag =
    ignore
      (K.Kernel.spawn k ~pname:tag
         (K.Workload.concat
            [ [| K.Workload.Initiate { path = ">home>big"; reg = 0 } |];
              K.Workload.sequential_read ~seg_reg:0 ~pages:breaker_pages ]));
    Alcotest.(check bool)
      (tag ^ " completes")
      true
      (K.Kernel.run_to_completion ~max_events:4_000_000 k)
  in
  (* Size the outages off a fault-free pass so each lands mid-read and
     lifts while reads remain — the pass can only finish through a
     successful half-open probe. *)
  let t0 = K.Kernel.now k in
  one_pass "warm";
  let span = max 1 (K.Kernel.now k - t0) in
  let outage tag =
    let t = K.Kernel.now k in
    Hw.Fault_inject.pack_offline faults ~pack:0 ~at_ns:(t + (span / 5));
    Hw.Fault_inject.pack_online faults ~pack:0
      ~at_ns:(t + (span / 5) + (span / 2));
    one_pass tag
  in
  outage "pass1";
  outage "pass2";
  let io = K.Kernel.io_stats k in
  check Alcotest.bool "each window tripped the breaker" true
    (io.K.Kernel.io_breaker_opens >= 2);
  check Alcotest.bool "each recovery closed it through a probe" true
    (io.K.Kernel.io_breaker_closes >= 2);
  check Alcotest.int "one Pack_offline signal per window" 2
    io.K.Kernel.io_offline;
  check Alcotest.int "shed reads damaged nothing" 0 io.K.Kernel.io_damaged

(* ------------------------------------------------------------------ *)
(* Brownout: the ladder moves one rung at a time, and overload moves
   it. *)

let test_brownout_ladder_steps () =
  (* Bench C6's proportions, which are known to breach the ready-wait
     watchdog: many paging sessions on few frames. *)
  let config =
    { K.Kernel.default_config with
      K.Kernel.hw = Hw.Hw_config.with_frames Hw.Hw_config.kernel_multics 72;
      core_frames = 44;
      disk_packs = 2;
      records_per_pack = 512;
      max_processes = 32;
      overload =
        Some
          { K.Kernel.default_overload with
            K.Kernel.ov_brownout = true;
            ov_brownout_tick_ns = 20_000_000 } }
  in
  let k = boot ~config () in
  let transitions = ref [] in
  K.Kernel.set_on_brownout k (fun level ->
      transitions := level :: !transitions);
  for i = 0 to 17 do
    ignore
      (K.Kernel.spawn k
         ~pname:(Printf.sprintf "u%d" i)
         (K.Workload.concat
            [ [| K.Workload.Create_file
                   { dir = ">home"; name = Printf.sprintf "f%d" i };
                 K.Workload.Initiate
                   { path = Printf.sprintf ">home>f%d" i; reg = 0 } |];
              K.Workload.sequential_write ~seg_reg:0 ~pages:16;
              K.Workload.random_touches ~seg_reg:0 ~pages:16 ~count:90
                ~write_pct:25 ~seed:(1000 + i) ]))
  done;
  ignore (K.Kernel.run_to_completion k);
  check Alcotest.bool "overload escalated the ladder" true
    (K.Kernel.brownout_escalations k >= 1);
  let steps = List.rev !transitions in
  check Alcotest.bool "the ladder was walked" true (steps <> []);
  let rec one_rung prev = function
    | [] -> ()
    | l :: rest ->
        check Alcotest.int
          (Printf.sprintf "one rung at a time (%d -> %d)" prev l)
          1 (abs (l - prev));
        check Alcotest.bool "within the ladder" true (l >= 0 && l <= 4);
        one_rung l rest
  in
  one_rung 0 steps

(* ------------------------------------------------------------------ *)
(* Determinism: the full plane — deadlines, budget, jitter, breakers,
   brownout, plus a transient fault — run twice is byte-identical in
   clock, io_report and disk image. *)

let controlled_run () =
  let faults = Hw.Fault_inject.create () in
  Hw.Fault_inject.fail_reads faults ~pack:0 ~record:40 ~times:2;
  let config =
    { K.Kernel.small_config with
      K.Kernel.faults;
      overload =
        Some
          { K.Kernel.ov_deadline_ns = 0;
            ov_retry_budget = 4;
            ov_backoff_jitter = true;
            ov_breaker_threshold = 3;
            ov_breaker_cooldown_ns = 2_000_000;
            ov_brownout = true;
            ov_brownout_tick_ns = 5_000_000 };
      hw = Hw.Hw_config.with_cpus Hw.Hw_config.kernel_multics 1 }
  in
  let k = boot ~config () in
  for i = 0 to 5 do
    let deadline_ns = if i mod 3 = 2 then Some 400_000 else None in
    ignore
      (K.Kernel.spawn k
         ~pname:(Printf.sprintf "u%d" i)
         ?deadline_ns
         (busy_program ~i ~touches:150))
  done;
  ignore (K.Kernel.run_to_completion k);
  (K.Kernel.now k, K.Kernel.io_stats k, K.Kernel.proc_timeouts k,
   disk_checksum k)

let test_double_run_byte_identical () =
  let t1, io1, shed1, d1 = controlled_run () in
  let t2, io2, shed2, d2 = controlled_run () in
  check Alcotest.int "clock identical" t1 t2;
  check Alcotest.bool "io_report identical" true (io1 = io2);
  check Alcotest.int "same processes expired" shed1 shed2;
  check Alcotest.int "disk image identical" d1 d2

(* The explorer over the overload plane's choice points is domain-count
   independent: DFS outcomes on the breaker harness are byte-identical
   at 1 and 4 pool domains, clean and seeded-bug alike. *)
let test_breaker_explorer_domains () =
  let bytes o = Format.asprintf "%a" Check.Explore.pp_outcome o in
  let dfs ?bug domains =
    bytes
      (Check.Explore.check_dfs ~domains ~max_runs:400
         (Check.Harness.breaker_system ?bug ()))
  in
  check Alcotest.string "clean DFS at 1 = 4 domains" (dfs 1) (dfs 4);
  check Alcotest.string "buggy DFS at 1 = 4 domains" (dfs ~bug:true 1)
    (dfs ~bug:true 4)

let tests =
  [ Alcotest.test_case "deadline retires the expired process" `Quick
      test_deadline_expires_process;
    Alcotest.test_case "login deadline inherited by the session" `Quick
      test_login_deadline_inherited;
    Alcotest.test_case "retry budget sheds as timed-out" `Quick
      test_retry_budget_denies;
    Alcotest.test_case "backoff jitter: inert until scripted" `Quick
      test_backoff_jitter_inert_then_scripted;
    Alcotest.test_case "offline windows re-arm" `Quick
      test_offline_windows_rearm;
    Alcotest.test_case "breakers across two outages, no damage" `Quick
      test_kernel_breaker_two_outages;
    Alcotest.test_case "brownout ladder steps one rung" `Quick
      test_brownout_ladder_steps;
    Alcotest.test_case "full plane double run byte-identical" `Quick
      test_double_run_byte_identical;
    Alcotest.test_case "explorer domain-count independent" `Quick
      test_breaker_explorer_domains ]
