(* System incarnations.

   Luniewski's initialisation experiment moved table-building out of
   the kernel and into "a user process environment in a previous system
   incarnation".  This example runs a full generation cycle: build a
   world, shut the system down, boot a new incarnation over the same
   packs, and carry on — files, labels, ACLs and quota intact.

     dune exec examples/incarnation.exe
*)

module K = Multics_kernel
module S = Multics_services
module Aim = Multics_aim

let low = Aim.Label.system_low
let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

let () =
  (* ---- incarnation 1: cold boot, build the world ---- *)
  let k1 = K.Kernel.boot K.Kernel.default_config in
  Format.printf "incarnation 1: cold boot@.";
  K.Kernel.mkdir k1 ~path:">udd" ~acl:open_acl ~label:low;
  K.Kernel.mkdir k1 ~path:">udd>turing" ~acl:open_acl ~label:low;
  K.Kernel.set_quota k1 ~path:">udd>turing" ~limit:32;
  let writer =
    K.Workload.concat
      [ [| K.Workload.Create_file { dir = ">udd>turing"; name = "entscheidung" };
           K.Workload.Initiate { path = ">udd>turing>entscheidung"; reg = 0 } |];
        K.Workload.sequential_write ~seg_reg:0 ~pages:6 ]
  in
  ignore
    (K.Kernel.spawn k1
       ~principal:{ K.Acl.user = "turing"; project = "acl" }
       ~pname:"turing" writer);
  assert (K.Kernel.run_to_completion k1);
  (match K.Kernel.quota_usage k1 ~path:">udd>turing" with
  | Some (used, limit) ->
      Format.printf "  wrote 6 pages; quota %d of %d@." used limit
  | None -> ());

  (* ---- shutdown: everything to the packs ---- *)
  K.Kernel.shutdown k1;
  Format.printf "shutdown: hierarchy, data and quota persisted to the packs@.";

  (* ---- incarnation 2: boot over the surviving disk ---- *)
  let boot_meter_before = 0 in
  let k2 = K.Kernel.reboot K.Kernel.default_config ~from:k1 in
  ignore boot_meter_before;
  Format.printf "incarnation 2: booted from the previous incarnation's disk@.";
  (match K.Kernel.quota_usage k2 ~path:">udd>turing" with
  | Some (used, limit) -> Format.printf "  quota restored: %d of %d@." used limit
  | None -> Format.printf "  quota lost?!@.");

  (* The old data is readable; new work proceeds. *)
  let reader_and_writer =
    K.Workload.concat
      [ [| K.Workload.Initiate { path = ">udd>turing>entscheidung"; reg = 0 } |];
        K.Workload.sequential_read ~seg_reg:0 ~pages:6;
        [| K.Workload.Create_file { dir = ">udd>turing"; name = "ordinals" };
           K.Workload.Initiate { path = ">udd>turing>ordinals"; reg = 1 } |];
        K.Workload.sequential_write ~seg_reg:1 ~pages:4 ]
  in
  ignore
    (K.Kernel.spawn k2
       ~principal:{ K.Acl.user = "turing"; project = "acl" }
       ~pname:"turing2" reader_and_writer);
  assert (K.Kernel.run_to_completion k2);
  Format.printf "  read the 1st incarnation's pages, wrote 4 new ones@.";
  (match K.Kernel.quota_usage k2 ~path:">udd>turing" with
  | Some (used, limit) -> Format.printf "  quota now: %d of %d@." used limit
  | None -> ());

  (* The audit tools agree the new world is whole. *)
  (match K.Invariants.check k2 with
  | [] -> Format.printf "  invariants: clean@."
  | ps -> List.iter (fun p -> Format.printf "  INVARIANT: %s@." p) ps);
  (match K.Salvager.scan k2 with
  | [] -> Format.printf "  salvager: nothing to repair@."
  | fs ->
      List.iter (fun f -> Format.printf "  salvager: %a@." K.Salvager.pp_finding f) fs);

  (* The census angle: what initialisation-in-a-prior-incarnation buys. *)
  let old_init = S.Init_service.run S.Init_service.In_kernel in
  let new_init = S.Init_service.run S.Init_service.Previous_incarnation in
  Format.printf
    "@.census: in-kernel initialisation = %d us of ring-0 work and %d lines; \
     prior-incarnation = %d us at boot (%d lines), with %d us done ahead in \
     user space@."
    (old_init.S.Init_service.boot_kernel_ns / 1000)
    old_init.S.Init_service.kernel_lines
    (new_init.S.Init_service.boot_kernel_ns / 1000)
    new_init.S.Init_service.kernel_lines
    (new_init.S.Init_service.prior_user_ns / 1000)
