examples/file_service.ml: Format List Multics_aim Multics_census Multics_kernel Multics_services
