examples/secure_timesharing.ml: Array Format List Multics_aim Multics_kernel Multics_services String
