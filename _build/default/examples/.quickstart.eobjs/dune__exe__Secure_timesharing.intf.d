examples/secure_timesharing.mli:
