examples/incarnation.mli:
