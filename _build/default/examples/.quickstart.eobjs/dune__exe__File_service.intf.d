examples/file_service.mli:
