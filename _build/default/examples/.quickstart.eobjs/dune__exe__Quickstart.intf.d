examples/quickstart.mli:
