examples/incarnation.ml: Format List Multics_aim Multics_kernel Multics_services
