(* The integrity auditor's view.

   Prints the three dependency structures of the paper (Figures 2-4),
   proves the redesign loop-free, runs a mixed workload on both kernels,
   and compares what each implementation actually did against what its
   design declares — the executable version of "two or more small,
   expert teams of programmers ... try to understand the function of
   every program statement".

     dune exec examples/kernel_audit.exe
*)

module K = Multics_kernel
module L = Multics_legacy
module Dg = Multics_depgraph
module Aim = Multics_aim

let low = Aim.Label.system_low
let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

let mixed_load spawn =
  let file_writer dir name pages =
    K.Workload.concat
      [ [| K.Workload.Create_file { dir; name };
           K.Workload.Initiate { path = dir ^ ">" ^ name; reg = 0 } |];
        K.Workload.sequential_write ~seg_reg:0 ~pages ]
  in
  spawn "w1" (file_writer ">home" "a" 6);
  spawn "w2" (K.Workload.file_churn ~dir:">home" ~files:4 ~pages_each:2 ~seed:5);
  spawn "w3"
    (K.Workload.concat
       [ [| K.Workload.Await_ec { ec = "go"; value = 1 } |];
         file_writer ">home" "late" 3 ]);
  spawn "w4"
    [| K.Workload.Compute 80_000; K.Workload.Advance_ec { ec = "go" };
       K.Workload.Terminate |]

let () =
  Format.printf "=== The paper's figures ===@.@.";
  List.iter
    (fun g -> Format.printf "%a@." Dg.Render.layered g)
    [ Dg.Figures.fig2_superficial (); Dg.Figures.fig3_actual ();
      Dg.Figures.fig4_redesign () ];
  Format.printf "Why Figure 3 has loops:@.";
  List.iter
    (fun (what, why) -> Format.printf "  %-55s %s@." what why)
    Dg.Figures.fig3_loop_explanations;
  Format.printf "@.How Figure 4 removes them:@.";
  List.iter
    (fun (what, how) -> Format.printf "  %-45s %s@." what how)
    Dg.Figures.fig4_fixes;

  (* ---------------------------------------------------------------- *)
  Format.printf "@.=== Kernel/Multics: declared vs observed ===@.@.";
  let k = K.Kernel.boot K.Kernel.default_config in
  K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
  mixed_load (fun pname program -> ignore (K.Kernel.spawn k ~pname program));
  ignore (K.Kernel.run_to_completion k);
  let declared = K.Registry.declared_graph () in
  Format.printf "%a@." Dg.Render.layered declared;
  Format.printf "%a@." Dg.Conformance.report (K.Kernel.dependency_audit k);

  (* ---------------------------------------------------------------- *)
  Format.printf "@.=== Legacy supervisor: observed vs Figure 2 ===@.@.";
  let s = L.Old_supervisor.boot L.Old_supervisor.default_config in
  L.Old_supervisor.mkdir s ~path:">home" ~acl:open_acl;
  mixed_load (fun pname program ->
      ignore (L.Old_supervisor.spawn s ~pname program));
  ignore (L.Old_supervisor.run_to_completion s);
  let observed = L.Old_supervisor.observed_graph s in
  Format.printf "observed shared-data/call edges:@.%a@." Dg.Render.edge_list
    observed;
  let fig2 = Dg.Figures.fig2_superficial () in
  let undeclared =
    List.filter
      (fun (from, to_, _) -> not (Dg.Graph.mem_edge fig2 ~from ~to_))
      (Dg.Graph.edges observed)
  in
  Format.printf
    "edges beyond the superficial structure (the paper's discoveries):@.";
  List.iter
    (fun (from, to_, _) -> Format.printf "  %s -> %s@." from to_)
    undeclared;

  (* ---------------------------------------------------------------- *)
  Format.printf "@.=== Entry-point census ===@.@.";
  Format.printf "%a@." Multics_census.Report.entry_point_table ();
  Format.printf "this reproduction's live gates: %d defined, %d user-callable@."
    (K.Gate.registered (K.Kernel.gate k))
    (K.Gate.user_callable (K.Kernel.gate k))
