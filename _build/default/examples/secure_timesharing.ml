(* Secure timesharing: the MITRE model in action.

   Users at different sensitivity levels share one Multics: AIM labels
   on every file and directory, simple security (no read up), the
   *-property (no write down), Bratt's mythical identifiers hiding even
   the *names* of things, the audit trail, and — the paper's closing
   confinement puzzle — a quota channel written by a mere read.

     dune exec examples/secure_timesharing.exe
*)

module K = Multics_kernel
module S = Multics_services
module Aim = Multics_aim

let low = Aim.Label.system_low
let secret = Aim.Label.make Aim.Level.secret Aim.Compartment.empty
let secret_nato =
  Aim.Label.make Aim.Level.secret (Aim.Compartment.of_list [ 1 ])

let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

let () =
  let k = K.Kernel.boot K.Kernel.default_config in

  (* A multi-level tree: a public area, a secret project area, and a
     compartmented corner of it. *)
  K.Kernel.mkdir k ~path:">public" ~acl:open_acl ~label:low;
  K.Kernel.create_file k ~path:">public>motd" ~acl:open_acl ~label:low;
  K.Kernel.mkdir k ~path:">crypto" ~acl:open_acl ~label:secret;
  K.Kernel.create_file k ~path:">crypto>keys" ~acl:open_acl ~label:secret;
  K.Kernel.create_file k ~path:">crypto>nato_annex" ~acl:open_acl
    ~label:secret_nato;
  K.Kernel.mkdir k ~path:">public>dropbox" ~acl:open_acl ~label:low;
  K.Kernel.set_quota k ~path:">public>dropbox" ~limit:16;

  let svc =
    S.Answering_service.create ~kernel:k ~variant:S.Answering_service.Split
  in
  S.Answering_service.register_user svc ~user:"lodato" ~password:"pw"
    ~clearance:low;
  S.Answering_service.register_user svc ~user:"whitmore" ~password:"pw"
    ~clearance:secret;

  (* The low user probes upward: every attempt must come back
     indistinguishable from nonexistence, and a read must fault. *)
  let low_probe =
    [| K.Workload.Initiate { path = ">public>motd"; reg = 0 };
       K.Workload.Touch { seg_reg = 0; pageno = 0; offset = 0; write = false };
       (* inaccessible level: *)
       K.Workload.Initiate { path = ">crypto>keys"; reg = 1 };
       K.Workload.Initiate { path = ">crypto>no_such_thing"; reg = 2 };
       (* Probing below the unreadable directory: every component gets a
          stable mythical identifier and the walk never learns anything. *)
       K.Workload.Initiate { path = ">crypto>project>x>notes"; reg = 3 };
       K.Workload.Initiate { path = ">crypto>project>x>notes"; reg = 4 };
       K.Workload.List_dir { path = ">crypto" };
       K.Workload.Terminate |]
  in
  (* The secret user reads down freely but cannot write down. *)
  let secret_session =
    [| K.Workload.Initiate { path = ">public>motd"; reg = 0 };
       K.Workload.Touch { seg_reg = 0; pageno = 0; offset = 0; write = false };
       K.Workload.Initiate { path = ">crypto>keys"; reg = 1 };
       K.Workload.Touch { seg_reg = 1; pageno = 0; offset = 0; write = true };
       (* compartment not held: *)
       K.Workload.Initiate { path = ">crypto>nato_annex"; reg = 2 };
       (* write down, should be refused at initiation: *)
       K.Workload.Create_file { dir = ">public"; name = "leak" };
       K.Workload.Terminate |]
  in
  let low_pid =
    match
      S.Answering_service.login svc ~user:"lodato" ~password:"pw"
        ~program:low_probe
    with
    | Ok pid -> pid
    | Error _ -> failwith "login"
  in
  let secret_pid =
    match
      S.Answering_service.login svc ~user:"whitmore" ~password:"pw"
        ~program:secret_session
    with
    | Ok pid -> pid
    | Error _ -> failwith "login"
  in
  ignore (K.Kernel.run_to_completion k);

  let upm = K.Kernel.user_process k in
  let report pid who =
    let p = K.User_process.proc upm pid in
    let segnos =
      Array.to_list (Array.sub p.K.User_process.regs 0 3)
      |> List.map (fun r -> if r < 0 then "-" else string_of_int r)
    in
    Format.printf "%s: state=%s regs=[%s]@." who
      (match p.K.User_process.pstate with
      | K.User_process.P_done -> "done"
      | K.User_process.P_failed m -> "failed: " ^ m
      | _ -> "running")
      (String.concat "," segnos)
  in
  report low_pid "lodato (unclassified)";
  report secret_pid "whitmore (secret)   ";
  Format.printf
    "mythical identifiers issued: %d (probes into the secret tree)@."
    (K.Directory.mythical_answers (K.Kernel.directory k));

  (* The confinement anomaly: a secret process merely READING a fresh
     page of a low dropbox file changes the dropbox's quota count —
     information flowing downward through the accounting variable, "in
     violation of the confinement goal" (paper p.30). *)
  K.Kernel.create_file k ~path:">public>dropbox>blank" ~acl:open_acl
    ~label:low;
  let before =
    match K.Kernel.quota_usage k ~path:">public>dropbox" with
    | Some (used, _) -> used
    | None -> 0
  in
  let reader =
    [| K.Workload.Initiate { path = ">public>dropbox>blank"; reg = 0 };
       K.Workload.Touch { seg_reg = 0; pageno = 3; offset = 0; write = false };
       K.Workload.Terminate |]
  in
  ignore (K.Kernel.spawn k ~pname:"covert_reader" reader);
  ignore (K.Kernel.run_to_completion k);
  let after =
    match K.Kernel.quota_usage k ~path:">public>dropbox" with
    | Some (used, _) -> used
    | None -> 0
  in
  Format.printf
    "@.confinement anomaly: dropbox quota count %d -> %d after a READ of a \
     zero page@."
    before after;

  Format.printf "@.AIM audit trail:@.%a" Aim.Audit.pp (K.Kernel.aim_audit k)
