(* Quickstart: boot Kernel/Multics, log two users in through the
   Answering Service, let them build and read files, and print the
   kernel's report.

     dune exec examples/quickstart.exe
*)

module K = Multics_kernel
module S = Multics_services
module Aim = Multics_aim

let low = Aim.Label.system_low
let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

let () =
  (* 1. Boot the kernel: hardware, managers bottom-up, root directory,
     permanently bound virtual processors. *)
  let k = K.Kernel.boot K.Kernel.default_config in
  Format.printf "booted Kernel/Multics: %d gates (%d user-callable)@."
    (K.Gate.registered (K.Kernel.gate k))
    (K.Gate.user_callable (K.Kernel.gate k));

  (* 2. Administrative setup: home directories with a storage quota. *)
  K.Kernel.mkdir k ~path:">udd" ~acl:open_acl ~label:low;
  K.Kernel.mkdir k ~path:">udd>alice" ~acl:open_acl ~label:low;
  K.Kernel.mkdir k ~path:">udd>bob" ~acl:open_acl ~label:low;
  K.Kernel.set_quota k ~path:">udd>alice" ~limit:64;
  K.Kernel.set_quota k ~path:">udd>bob" ~limit:32;

  (* 3. The Answering Service authenticates users and creates their
     processes (the split arrangement: under 1,000 trusted lines). *)
  let svc =
    S.Answering_service.create ~kernel:k ~variant:S.Answering_service.Split
  in
  S.Answering_service.register_user svc ~user:"alice" ~password:"vv67"
    ~clearance:low;
  S.Answering_service.register_user svc ~user:"bob" ~password:"q21x"
    ~clearance:low;

  (* A stored program for alice: machine code in an ordinary segment,
     demand-paged like everything else.  It bumps a counter in her
     report's last page 3 times (segment numbers are assigned in
     initiation order: report = 64, code = 65). *)
  K.Kernel.create_file k ~path:">udd>alice>bump_tool" ~acl:open_acl ~label:low;
  K.Kernel.load_program k ~path:">udd>alice>bump_tool"
    (Multics_hw.Isa.assemble
       [ (Multics_hw.Isa.LDI, 0, 3); (Multics_hw.Isa.STA, 64, 9 * 1024);
         (* loop: *)
         (Multics_hw.Isa.AOS, 64, (9 * 1024) + 1);
         (Multics_hw.Isa.LDA, 64, 9 * 1024);
         (Multics_hw.Isa.SUB, 65, 8);  (* constant 1, stored after HLT *)
         (Multics_hw.Isa.STA, 64, 9 * 1024);
         (Multics_hw.Isa.TNZ, 65, 2);
         (Multics_hw.Isa.HLT, 0, 0) ]
    @ [ 1 ]);
  let alice_session =
    K.Workload.concat
      [ [| K.Workload.Create_file { dir = ">udd>alice"; name = "report" };
           K.Workload.Initiate { path = ">udd>alice>report"; reg = 0 } |];
        K.Workload.sequential_write ~seg_reg:0 ~pages:10;
        K.Workload.sequential_read ~seg_reg:0 ~pages:10;
        [| K.Workload.Initiate { path = ">udd>alice>bump_tool"; reg = 1 };
           K.Workload.Execute { seg_reg = 1; entry = 0 };
           K.Workload.Advance_ec { ec = "report_ready" } |] ]
  in
  let bob_session =
    K.Workload.concat
      [ (* Bob waits until Alice's report exists, then reads it. *)
        [| K.Workload.Await_ec { ec = "report_ready"; value = 1 };
           K.Workload.Initiate { path = ">udd>alice>report"; reg = 1 } |];
        K.Workload.sequential_read ~seg_reg:1 ~pages:10;
        K.Workload.file_churn ~dir:">udd>bob" ~files:5 ~pages_each:2 ~seed:11 ]
  in
  let alice_pid =
    match
      S.Answering_service.login svc ~user:"alice" ~password:"vv67"
        ~program:alice_session
    with
    | Ok pid -> pid
    | Error _ -> failwith "alice login failed"
  in
  let bob_pid =
    match
      S.Answering_service.login svc ~user:"bob" ~password:"q21x"
        ~program:bob_session
    with
    | Ok pid -> pid
    | Error _ -> failwith "bob login failed"
  in
  (* A bad password, for the accounting record. *)
  (match
     S.Answering_service.login svc ~user:"bob" ~password:"wrong"
       ~program:bob_session
   with
  | Error `Bad_password -> Format.printf "bob mistyped his password once@."
  | _ -> assert false);

  (* 4. Run the machine until both sessions finish. *)
  let all_done = K.Kernel.run_to_completion k in
  Format.printf "sessions complete: %b@." all_done;
  S.Answering_service.logout svc ~pid:alice_pid;
  S.Answering_service.logout svc ~pid:bob_pid;

  (* 5. What happened. *)
  (match K.Kernel.quota_usage k ~path:">udd>alice" with
  | Some (used, limit) ->
      Format.printf "alice's quota: %d of %d pages@." used limit
  | None -> ());
  Format.printf "@.%a@." K.Kernel.pp_report k;
  Format.printf "accounting:@.%a" S.Accounting.pp
    (S.Answering_service.accounting svc);

  (* 6. The integrity audit: observed manager calls vs. the declared
     loop-free structure. *)
  Format.printf "@.%a" Multics_depgraph.Conformance.report
    (K.Kernel.dependency_audit k)
