(* A specialised network-connected file store.

   The paper conjectures about "a computer system dedicated to just
   file storage and management" with "no general-purpose user
   programming permitted".  This example configures exactly that: the
   only processes are file-server daemons; requests arrive as network
   messages over the generic demultiplexer, each server executes the
   file operations for its client and signals a reply.

     dune exec examples/file_service.exe
*)

module K = Multics_kernel
module S = Multics_services
module Aim = Multics_aim

let low = Aim.Label.system_low
let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

let () =
  let k = K.Kernel.boot K.Kernel.default_config in
  K.Kernel.mkdir k ~path:">store" ~acl:open_acl ~label:low;
  K.Kernel.set_quota k ~path:">store" ~limit:256;
  let net = S.Network.create ~kernel:k ~variant:S.Network.Generic_demux in

  (* Three client connections, one server daemon each.  A daemon waits
     for each request message, performs the client's file operations,
     and bumps a completion eventcount in lieu of a reply message. *)
  let server_program conn i =
    K.Workload.concat
      [ [| K.Workload.Create_dir { parent = ">store"; name = conn } |];
        (* request 1: store a document *)
        [| K.Workload.Await_ec { ec = conn; value = 1 };
           K.Workload.Create_file { dir = ">store>" ^ conn; name = "doc" };
           K.Workload.Initiate { path = ">store>" ^ conn ^ ">doc"; reg = 0 } |];
        K.Workload.sequential_write ~seg_reg:0 ~pages:(4 + i);
        [| K.Workload.Advance_ec { ec = conn ^ ".done" } |];
        (* request 2: read it back *)
        [| K.Workload.Await_ec { ec = conn; value = 2 } |];
        K.Workload.sequential_read ~seg_reg:0 ~pages:(4 + i);
        [| K.Workload.Advance_ec { ec = conn ^ ".done" } |];
        (* request 3: delete *)
        [| K.Workload.Await_ec { ec = conn; value = 3 };
           K.Workload.Terminate_seg { seg_reg = 0 };
           K.Workload.Delete { path = ">store>" ^ conn ^ ">doc" };
           K.Workload.Advance_ec { ec = conn ^ ".done" } |] ]
  in
  let connections = [ "conn_a"; "conn_b"; "conn_c" ] in
  List.iteri
    (fun i conn ->
      S.Network.attach_channel net ~net:S.Network.Arpanet ~channel:conn;
      ignore
        (K.Kernel.spawn k
           ~principal:{ K.Acl.user = "fileserver"; project = "daemon" }
           ~pname:("server_" ^ conn)
           (server_program conn i)))
    connections;

  (* Client traffic: three requests per connection, staggered. *)
  List.iteri
    (fun i conn ->
      for req = 0 to 2 do
        S.Network.inject net ~net:S.Network.Arpanet ~channel:conn ~bytes:768
          ~delay_ns:(500_000 + (i * 120_000) + (req * 3_000_000))
      done)
    connections;

  let ok = K.Kernel.run_to_completion k in
  Format.printf "file store drained all requests: %b@." ok;
  Format.printf "messages delivered: %d (kernel protocol work: %d us, user \
                 domain: %d us)@."
    (S.Network.delivered net)
    (S.Network.kernel_protocol_ns net / 1000)
    (S.Network.user_protocol_ns net / 1000);
  (match K.Kernel.quota_usage k ~path:">store" with
  | Some (used, limit) ->
      Format.printf "store quota after deletes: %d of %d pages@." used limit
  | None -> ());
  Format.printf "@.%a@." K.Kernel.pp_report k;

  (* The specialisation estimate the paper makes: even a dedicated file
     store keeps most of the kernel. *)
  let base = Multics_census.Inventory.base_1973 in
  let final, _ = Multics_census.Restructure.apply_all base in
  let low_est, high_est =
    Multics_census.Restructure.specialize_file_store_estimate final
  in
  Format.printf
    "census: specialising the kernel to this configuration would shed only \
     %s-%s more@."
    (Multics_census.Report.round_k low_est)
    (Multics_census.Report.round_k high_est)
