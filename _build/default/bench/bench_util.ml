(* Shared helpers for the bench sections. *)

module K = Multics_kernel
module L = Multics_legacy
module Aim = Multics_aim

let low = Aim.Label.system_low
let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

let section id title =
  Format.printf "@.%s@." (String.make 72 '=');
  Format.printf "%s  %s@." id title;
  Format.printf "%s@.@." (String.make 72 '=')

let file_writer ~dir ~name ~pages =
  K.Workload.concat
    [ [| K.Workload.Create_file { dir; name };
         K.Workload.Initiate { path = dir ^ ">" ^ name; reg = 0 } |];
      K.Workload.sequential_write ~seg_reg:0 ~pages ]

let boot_new ?(config = K.Kernel.default_config) () =
  let k = K.Kernel.boot config in
  K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
  k

let boot_old ?(config = L.Old_supervisor.default_config) () =
  let s = L.Old_supervisor.boot config in
  L.Old_supervisor.mkdir s ~path:">home" ~acl:open_acl;
  s

let us ns = float_of_int ns /. 1_000.0

let pct_delta a b =
  (* how much slower b is than a, in percent *)
  100.0 *. (float_of_int b -. float_of_int a) /. float_of_int a

let row2 label a b = Format.printf "  %-38s %12s %12s@." label a b
let fmt_us ns = Printf.sprintf "%.1f us" (us ns)
