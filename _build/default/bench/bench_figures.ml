(* F2/F3/F4: regenerate the dependency-structure figures, prove the
   redesign loop-free, and audit the running kernels against them. *)

module K = Multics_kernel
module L = Multics_legacy
module Dg = Multics_depgraph

let mixed_load spawn =
  spawn "writer" (Bench_util.file_writer ~dir:">home" ~name:"a" ~pages:6);
  spawn "churn" (K.Workload.file_churn ~dir:">home" ~files:4 ~pages_each:2 ~seed:5);
  spawn "late"
    (K.Workload.concat
       [ [| K.Workload.Await_ec { ec = "go"; value = 1 } |];
         Bench_util.file_writer ~dir:">home" ~name:"late" ~pages:3 ]);
  spawn "poker"
    [| K.Workload.Compute 80_000; K.Workload.Advance_ec { ec = "go" };
       K.Workload.Terminate |]

let fig1 () =
  Bench_util.section "F1" "Figure 1: the project plan (descriptive)";
  List.iter
    (fun (box, here) -> Format.printf "  (%s) %-47s -> %s@." (fst box) (snd box) here)
    [ (("1", "add the Access Isolation Mechanism to Multics"),
       "lib/aim, enforced by lib/core");
      (("2", "install for practical experience with AIM"),
       "the secure_timesharing example");
      (("3", "experiment with alternative internal structures"),
       "lib/core vs lib/legacy, this harness");
      (("4", "devise formal specifications"),
       "declared dependency graphs + invariant checker");
      (("5", "implement Kernel/Multics"), "lib/core");
      (("6", "certify compliance"),
       "conformance audit, invariants, salvager, tiger team") ];
  Format.printf
    "  (The Air Force suspended the original project with boxes 1-3 \
     complete; this reproduction gets to run all six.)@."

let fig2 () =
  Bench_util.section "F2" "Figure 2: superficial dependency structure";
  let g = Dg.Figures.fig2_superficial () in
  Format.printf "%a@." Dg.Render.layered g;
  Format.printf
    "\"The obvious exception to a linear structure is the circular \
     dependency of the processor multiplexing facilities and the virtual \
     memory mechanism.\"@."

let fig3 () =
  Bench_util.section "F3" "Figure 3: actual dependency structure";
  let g = Dg.Figures.fig3_actual () in
  Format.printf "%a@." Dg.Render.layered g;
  Format.printf "Causes, as catalogued by the paper:@.";
  List.iter
    (fun (what, why) -> Format.printf "  %-52s %s@.@." what why)
    Dg.Figures.fig3_loop_explanations;
  (* The legacy implementation rediscovers these edges at runtime. *)
  let s = Bench_util.boot_old () in
  L.Old_supervisor.set_quota s ~path:">home" ~limit:256;
  mixed_load (fun pname program ->
      ignore (L.Old_supervisor.spawn s ~pname program));
  ignore (L.Old_supervisor.run_to_completion s);
  let observed = L.Old_supervisor.observed_graph s in
  let fig2 = Dg.Figures.fig2_superficial () in
  Format.printf
    "running the legacy supervisor and tracing shared-data access finds the \
     same extra edges:@.";
  List.iter
    (fun (from, to_, _) ->
      if not (Dg.Graph.mem_edge fig2 ~from ~to_) then
        Format.printf "  observed: %s -> %s@." from to_)
    (Dg.Graph.edges observed)

let fig4 () =
  Bench_util.section "F4" "Figure 4: the redesigned loop-free structure";
  let g = Dg.Figures.fig4_redesign () in
  Format.printf "%a@." Dg.Render.layered g;
  Format.printf "The redesign mechanisms:@.";
  List.iter
    (fun (what, how) -> Format.printf "  %-45s %s@.@." what how)
    Dg.Figures.fig4_fixes;
  (* This repository's implementation, declared and observed. *)
  let declared = K.Registry.declared_graph () in
  Format.printf "this reproduction's declared implementation graph:@.";
  Format.printf "%a@." Dg.Render.layered declared;
  let k = Bench_util.boot_new () in
  mixed_load (fun pname program -> ignore (K.Kernel.spawn k ~pname program));
  ignore (K.Kernel.run_to_completion k);
  Format.printf "runtime conformance audit after a mixed workload:@.";
  let conf = K.Kernel.dependency_audit k in
  Format.printf "%a@." Dg.Conformance.report conf;
  (match Dg.Conformance.unexercised conf with
  | [] -> Format.printf "every declared call edge was exercised@."
  | rest ->
      Format.printf
        "declared call edges this workload did not exercise (coverage \
         gaps an auditor would note):@.";
      List.iter (fun (from, to_) -> Format.printf "  %s -> %s@." from to_) rest)

let run () =
  fig1 ();
  fig2 ();
  fig3 ();
  fig4 ()
