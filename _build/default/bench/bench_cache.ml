(* C1: the associative memories, off vs on.

   The 6180 carried a 16-slot SDW associative memory; the simulator
   models it per CPU (physical and virtual), and the user-ring name
   manager adds a pathname-resolution cache above the kernel's search
   gate.  Both are pure accelerators: every experiment here runs the
   same workload with the caches disabled and enabled, reports the
   simulated-time delta and hit rates, and FAILS if the functional
   results differ — the caches may change when things happen, never
   what happens. *)

module K = Multics_kernel
module Hw = Multics_hw

let sec = "C1"

let user_subject =
  { K.Directory.s_principal = { K.Acl.user = "user"; project = "proj" };
    s_label = Bench_util.low; s_trusted = false }

(* Everything off: no SDW associative memory, no pathname cache. *)
let off_config =
  { K.Kernel.default_config with
    K.Kernel.hw =
      { Hw.Hw_config.kernel_multics with Hw.Hw_config.assoc_mem_size = 0 };
    use_path_cache = false }

let on_config = K.Kernel.default_config

let pct_saved off on =
  100.0 *. float_of_int (off - on) /. float_of_int (max 1 off)

let tlb_rate (s : K.Kernel.cache_report) =
  let lookups = s.K.Kernel.tlb_hits + s.K.Kernel.tlb_misses in
  if lookups = 0 then 0.0
  else 100.0 *. float_of_int s.K.Kernel.tlb_hits /. float_of_int lookups

let path_rate (s : K.Kernel.cache_report) =
  let lookups = s.K.Kernel.path_hits + s.K.Kernel.path_misses in
  if lookups = 0 then 0.0
  else 100.0 *. float_of_int s.K.Kernel.path_hits /. float_of_int lookups

let report_caches k label =
  let s = K.Kernel.stats k in
  Format.printf
    "  %-10s sdw_am %d hits / %d misses (%.1f%% hit), %d flushes; \
     pathname %d hits / %d misses (%.1f%% hit)@."
    label s.K.Kernel.tlb_hits s.K.Kernel.tlb_misses (tlb_rate s)
    s.K.Kernel.tlb_flushes s.K.Kernel.path_hits s.K.Kernel.path_misses
    (path_rate s)

(* The functional fingerprint of a kernel run: what happened, not when.
   Context switches and elapsed ns legitimately move with the caches;
   these must not. *)
let fingerprint k ~completed =
  ( completed,
    K.Kernel.denials k,
    K.Page_frame.faults_served (K.Kernel.page_frame k),
    K.Segment.grows (K.Kernel.segment k),
    K.Page_frame.page_reads (K.Kernel.page_frame k) )

let check_same what a b =
  if a <> b then
    failwith
      (Printf.sprintf "bench_cache: %s computed different results with caches \
                       on — the accelerators changed semantics" what);
  let completed, denials, faults, grows, reads = a in
  Format.printf
    "  functional results identical off/on: completed=%b denials=%d \
     faults=%d grows=%d reads=%d@."
    completed denials faults grows reads

(* ------------------------------------------------------------------ *)
(* C1a: bare hardware.  A hand-built descriptor table and a random
   translation loop over a working set that fits the 16 slots — the
   paper's translation-heavy inner loop with nothing else in the way. *)

let hw_microloop () =
  let translations = 2_000 in
  let n_segs = 8 and pages = 4 in
  let run (config : Hw.Hw_config.t) =
    let machine = Hw.Machine.create config in
    let mem = machine.Hw.Machine.mem in
    let cpu = machine.Hw.Machine.cpus.(0) in
    (* Frame 0 holds the tables; data pages live in frames 1..32. *)
    let table = Hw.Addr.frame_base 0 in
    let pt_base s = table + 128 + (s * 16) in
    for s = 0 to n_segs - 1 do
      for p = 0 to pages - 1 do
        Hw.Ptw.write mem
          (pt_base s + p)
          (Hw.Ptw.in_core ~frame:(1 + (s * pages) + p))
      done;
      Hw.Sdw.write_at mem
        (table + (s * Hw.Sdw.words))
        (Hw.Sdw.make ~page_table:(pt_base s) ~length:pages ~read:true
           ~write:true ~execute:false ~r1:0 ~r2:7 ~r3:7)
    done;
    let dbr = Some { Hw.Cpu.base = table; n_segments = n_segs } in
    Hw.Cpu.load_user_dbr cpu dbr;
    cpu.Hw.Cpu.system_dbr <- dbr;
    let prng = K.Workload.Prng.create ~seed:7 in
    for _ = 1 to translations do
      let v =
        Hw.Addr.of_page
          ~segno:(K.Workload.Prng.int prng n_segs)
          ~pageno:(K.Workload.Prng.int prng pages)
          ~offset:(K.Workload.Prng.int prng Hw.Addr.page_size)
      in
      match Hw.Cpu.read config mem cpu v with
      | Ok _ -> ()
      | Error _ -> failwith "bench_cache: microloop translation faulted"
    done;
    ( cpu.Hw.Cpu.xl_ns,
      Hw.Assoc_mem.hits cpu.Hw.Cpu.tlb,
      Hw.Assoc_mem.misses cpu.Hw.Cpu.tlb )
  in
  let off_xl, _, _ =
    run { Hw.Hw_config.kernel_multics with Hw.Hw_config.assoc_mem_size = 0 }
  in
  let on_xl, hits, misses = run Hw.Hw_config.kernel_multics in
  let rate = 100.0 *. float_of_int hits /. float_of_int (hits + misses) in
  let saved = pct_saved off_xl on_xl in
  Format.printf
    "C1a  hardware translation loop (%d translations, %d segments):@."
    translations n_segs;
  Bench_util.row2 "translation ns (total)"
    (Bench_util.fmt_us off_xl) (Bench_util.fmt_us on_xl);
  Bench_util.row2 "" "(AM off)" "(AM on)";
  Format.printf
    "  associative memory: %d hits / %d misses (%.1f%% hit rate), \
     %.0f%% of translation time saved@."
    hits misses rate saved;
  Bench_util.recordi ~section:sec ~metric:"hw_translate_ns_off" off_xl;
  Bench_util.recordi ~section:sec ~metric:"hw_translate_ns_on" on_xl;
  Bench_util.record ~section:sec ~metric:"hw_translate_hit_rate" ~unit:"pct"
    rate;
  Bench_util.record ~section:sec ~metric:"hw_translate_saved" ~unit:"pct"
    saved;
  if saved < 30.0 then
    failwith
      (Printf.sprintf
         "bench_cache: expected >= 30%% translation-time reduction, got \
          %.0f%%" saved)

(* ------------------------------------------------------------------ *)
(* C1b: a translation-heavy kernel workload — the P4 toucher, one
   process over two working sets, ample memory so the two variants see
   the same faults. *)

let touches = 400
let touch_pages = 8

let touch_program () =
  let prng = K.Workload.Prng.create ~seed:41 in
  let body =
    Array.init touches (fun _ ->
        K.Workload.Touch
          { seg_reg = K.Workload.Prng.int prng 2;
            pageno = K.Workload.Prng.int prng touch_pages;
            offset = K.Workload.Prng.int prng 1024;
            write = K.Workload.Prng.pct prng 40 })
  in
  K.Workload.concat
    [ [| K.Workload.Initiate { path = ">home>ws1"; reg = 0 };
         K.Workload.Initiate { path = ">home>ws2"; reg = 1 } |];
      body ]

let kernel_touch_run config =
  let k = Bench_util.boot_new ~config () in
  ignore
    (K.Kernel.spawn k ~pname:"w1"
       (Bench_util.file_writer ~dir:">home" ~name:"ws1" ~pages:touch_pages));
  ignore
    (K.Kernel.spawn k ~pname:"w2"
       (Bench_util.file_writer ~dir:">home" ~name:"ws2" ~pages:touch_pages));
  let ok1 = K.Kernel.run_to_completion k in
  let t0 = K.Kernel.now k in
  ignore (K.Kernel.spawn k ~pname:"t1" (touch_program ()));
  let ok2 = K.Kernel.run_to_completion k in
  (k, fingerprint k ~completed:(ok1 && ok2), K.Kernel.now k - t0)

let kernel_touches () =
  Format.printf "@.C1b  kernel toucher (%d touches over 2 segments):@."
    touches;
  let k_off, fp_off, ns_off = kernel_touch_run off_config in
  let k_on, fp_on, ns_on = kernel_touch_run on_config in
  Bench_util.row2 "elapsed per touch"
    (Bench_util.fmt_us (ns_off / touches))
    (Bench_util.fmt_us (ns_on / touches));
  Bench_util.row2 "" "(caches off)" "(caches on)";
  Format.printf "  %.1f%% of elapsed time saved by the caches@."
    (pct_saved ns_off ns_on);
  report_caches k_off "off:";
  report_caches k_on "on:";
  check_same "kernel toucher" fp_off fp_on;
  Bench_util.recordi ~section:sec ~metric:"toucher_elapsed_ns_off" ns_off;
  Bench_util.recordi ~section:sec ~metric:"toucher_elapsed_ns_on" ns_on;
  Bench_util.record ~section:sec ~metric:"toucher_tlb_hit_rate" ~unit:"pct"
    (tlb_rate (K.Kernel.stats k_on))

(* ------------------------------------------------------------------ *)
(* C1c: the pathname cache — the P2 name-manager loop, 50 resolutions
   of a 5-component path.  A hit skips four search gate crossings. *)

let path_run config =
  let deep_path = ">home>a>b>c>leaf" in
  let k = Bench_util.boot_new ~config () in
  K.Kernel.mkdir k ~path:">home>a" ~acl:Bench_util.open_acl
    ~label:Bench_util.low;
  K.Kernel.mkdir k ~path:">home>a>b" ~acl:Bench_util.open_acl
    ~label:Bench_util.low;
  K.Kernel.mkdir k ~path:">home>a>b>c" ~acl:Bench_util.open_acl
    ~label:Bench_util.low;
  K.Kernel.create_file k ~path:deep_path ~acl:Bench_util.open_acl
    ~label:Bench_util.low;
  let before = K.Meter.total (K.Kernel.meter k) in
  let uid = ref 0 in
  for _ = 1 to 50 do
    match
      K.Name_space.initiate (K.Kernel.name_space k) ~subject:user_subject
        ~ring:5 ~path:deep_path
    with
    | Ok target -> uid := K.Ids.to_int target.K.Directory.t_uid
    | Error _ -> failwith "bench_cache: resolve"
  done;
  let per = (K.Meter.total (K.Kernel.meter k) - before) / 50 in
  (k, per, !uid)

let path_bench () =
  Format.printf "@.C1c  name manager (50 x 5-component resolution):@.";
  let k_off, per_off, uid_off = path_run off_config in
  let k_on, per_on, uid_on = path_run on_config in
  if uid_off <> uid_on then
    failwith "bench_cache: pathname cache resolved a different uid";
  Bench_util.row2 "per resolution" (Bench_util.fmt_us per_off)
    (Bench_util.fmt_us per_on);
  Bench_util.row2 "" "(cache off)" "(cache on)";
  Format.printf
    "  %.0f%% of resolution time saved; every resolution reached the same \
     uid@."
    (pct_saved per_off per_on);
  report_caches k_off "off:";
  report_caches k_on "on:";
  Bench_util.recordi ~section:sec ~metric:"resolve_ns_off" per_off;
  Bench_util.recordi ~section:sec ~metric:"resolve_ns_on" per_on;
  Bench_util.record ~section:sec ~metric:"resolve_path_hit_rate" ~unit:"pct"
    (path_rate (K.Kernel.stats k_on))

(* ------------------------------------------------------------------ *)
(* C1d: a P5-style process mix — context switches flush the AM between
   processes, so this measures the caches under multiplexing, and
   checks the whole mix still computes the same results. *)

let mix_run config =
  let k = Bench_util.boot_new ~config () in
  for i = 1 to 4 do
    ignore
      (K.Kernel.spawn k
         ~pname:(Printf.sprintf "cpu%d" i)
         (K.Workload.compute_bound ~steps:60 ~step_ns:3_000))
  done;
  for i = 1 to 2 do
    ignore
      (K.Kernel.spawn k
         ~pname:(Printf.sprintf "io%d" i)
         (Bench_util.file_writer ~dir:">home"
            ~name:(Printf.sprintf "io%d" i) ~pages:2))
  done;
  let completed = K.Kernel.run_to_completion k in
  (k, fingerprint k ~completed, K.Kernel.now k)

let mix_bench () =
  Format.printf "@.C1d  6-process mix under multiplexing:@.";
  let k_off, fp_off, ns_off = mix_run off_config in
  let k_on, fp_on, ns_on = mix_run on_config in
  Bench_util.row2 "elapsed" (Bench_util.fmt_us ns_off)
    (Bench_util.fmt_us ns_on);
  Bench_util.row2 "" "(caches off)" "(caches on)";
  let s_on = K.Kernel.stats k_on in
  Format.printf
    "  %d AM flushes on (context switches + setfaults); %.1f%% elapsed \
     saved@."
    s_on.K.Kernel.tlb_flushes (pct_saved ns_off ns_on);
  report_caches k_off "off:";
  report_caches k_on "on:";
  check_same "process mix" fp_off fp_on;
  Bench_util.recordi ~section:sec ~metric:"mix_elapsed_ns_off" ns_off;
  Bench_util.recordi ~section:sec ~metric:"mix_elapsed_ns_on" ns_on;
  Bench_util.recordi ~section:sec ~metric:"mix_tlb_flushes"
    s_on.K.Kernel.tlb_flushes ~unit:"count"

let run () =
  Bench_util.section "C1"
    "Associative memories: SDW AM + pathname cache, off vs on";
  hw_microloop ();
  kernel_touches ();
  path_bench ();
  mix_bench ()
