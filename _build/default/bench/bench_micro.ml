(* Bechamel wall-clock micro-benchmarks of the simulator's hot paths.
   One Test.make per paper artifact (the table, the figures, and each
   performance experiment's inner loop), so the harness itself can be
   profiled.  The default bench run prints simulated-time tables; this
   measures the OCaml implementation. *)

module K = Multics_kernel
module L = Multics_legacy
module Dg = Multics_depgraph
module Hw = Multics_hw

let t1_census () =
  (* T1: apply the whole restructuring pipeline. *)
  let _final, summaries =
    Multics_census.Restructure.apply_all Multics_census.Inventory.base_1973
  in
  assert (List.length summaries = 6)

let figures () =
  (* F2-F4: build the three graphs and run the loop analysis. *)
  assert (not (Dg.Graph.is_loop_free (Dg.Figures.fig2_superficial ())));
  assert (not (Dg.Graph.is_loop_free (Dg.Figures.fig3_actual ())));
  assert (Dg.Graph.is_loop_free (Dg.Figures.fig4_redesign ()))

let translation_hit =
  (* The hardware hot path: one address translation that hits. *)
  let config = { Hw.Hw_config.legacy_multics with Hw.Hw_config.memory_frames = 32 } in
  let machine = Hw.Machine.create config in
  let mem = machine.Hw.Machine.mem in
  Hw.Ptw.write mem 100 (Hw.Ptw.in_core ~frame:10);
  Hw.Sdw.write_at mem 4
    (Hw.Sdw.make ~page_table:100 ~length:1 ~read:true ~write:true
       ~execute:true ~r1:7 ~r2:7 ~r3:7);
  let cpu = machine.Hw.Machine.cpus.(0) in
  Hw.Cpu.load_user_dbr cpu (Some { Hw.Cpu.base = 0; n_segments = 8 });
  let virt = Hw.Addr.of_page ~segno:2 ~pageno:0 ~offset:5 in
  fun () ->
    match Hw.Cpu.translate config mem cpu virt Hw.Fault.Read with
    | Ok _ -> ()
    | Error _ -> assert false

let eventcount_cycle () =
  (* The synchronisation primitive of the two-level design. *)
  let ec = Multics_sync.Eventcount.create () in
  let woken = ref 0 in
  for i = 1 to 8 do
    ignore
      (Multics_sync.Eventcount.await ec ~value:i ~notify:(fun () -> incr woken))
  done;
  for _ = 1 to 8 do
    Multics_sync.Eventcount.advance ec
  done;
  assert (!woken = 8)

let kernel_boot () =
  (* Boot Kernel/Multics from nothing. *)
  ignore (K.Kernel.boot K.Kernel.small_config)

let kernel_workload () =
  (* P4's inner loop: a writer process end to end on the new kernel. *)
  let k = Bench_util.boot_new ~config:K.Kernel.small_config () in
  ignore
    (K.Kernel.spawn k ~pname:"w"
       (Bench_util.file_writer ~dir:">home" ~name:"f" ~pages:6));
  assert (K.Kernel.run_to_completion k)

let legacy_workload () =
  let s = Bench_util.boot_old ~config:L.Old_supervisor.small_config () in
  ignore
    (L.Old_supervisor.spawn s ~pname:"w"
       (Bench_util.file_writer ~dir:">home" ~name:"f" ~pages:6));
  assert (L.Old_supervisor.run_to_completion s)

let tests =
  let open Bechamel in
  [ Test.make ~name:"T1: census apply_all" (Staged.stage t1_census);
    Test.make ~name:"F2-F4: figures + loop analysis" (Staged.stage figures);
    Test.make ~name:"hw: translation hit" (Staged.stage translation_hit);
    Test.make ~name:"sync: eventcount 8 waiters" (Staged.stage eventcount_cycle);
    Test.make ~name:"kernel: boot" (Staged.stage kernel_boot);
    Test.make ~name:"P4 inner: new-kernel writer" (Staged.stage kernel_workload);
    Test.make ~name:"P4 inner: legacy writer" (Staged.stage legacy_workload) ]

let run () =
  Bench_util.section "MICRO" "Bechamel wall-clock micro-benchmarks";
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"multics" ~fmt:"%s %s" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> Format.printf "  %-40s %12.0f ns/run@." name ns
      | _ -> Format.printf "  %-40s %12s@." name "n/a")
    (List.sort compare rows)
