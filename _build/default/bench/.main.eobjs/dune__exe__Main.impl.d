bench/main.ml: Array Bench_ablation Bench_cache Bench_figures Bench_micro Bench_perf Bench_size Bench_util Format List String Sys
