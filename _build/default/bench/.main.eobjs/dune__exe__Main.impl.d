bench/main.ml: Array Bench_ablation Bench_figures Bench_micro Bench_perf Bench_size Format List String Sys
