bench/bench_size.ml: Bench_util Format List Multics_census Multics_kernel Multics_services
