bench/bench_cache.ml: Array Bench_util Format Multics_hw Multics_kernel Printf
