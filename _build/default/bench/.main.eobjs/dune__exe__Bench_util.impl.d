bench/bench_util.ml: Format Multics_aim Multics_kernel Multics_legacy Printf String
