bench/bench_util.ml: Buffer Char Float Format List Multics_aim Multics_kernel Multics_legacy Printf String
