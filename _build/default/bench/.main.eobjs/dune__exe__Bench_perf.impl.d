bench/bench_perf.ml: Array Bench_util Buffer Float Format List Multics_aim Multics_census Multics_hw Multics_kernel Multics_legacy Multics_services Printf
