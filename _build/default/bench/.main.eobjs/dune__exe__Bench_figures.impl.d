bench/bench_figures.ml: Bench_util Format List Multics_depgraph Multics_kernel Multics_legacy
