bench/main.mli:
