bench/bench_ablation.ml: Bench_util Format List Multics_hw Multics_kernel Multics_services Printf
