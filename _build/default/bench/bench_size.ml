(* T1: the paper's kernel-size table.
   S1: entry-point statistics (census + live gates).
   S4: specialised file-store estimate. *)

module C = Multics_census
module K = Multics_kernel

let table1 () =
  Bench_util.section "T1" "Kernel size table (paper p.34)";
  Format.printf "%a@." C.Report.size_table ();
  Format.printf "Per-component census behind the table (1973):@.";
  Format.printf "%a@." C.Report.component_listing C.Inventory.base_1973;
  let final, summaries = C.Restructure.apply_all C.Inventory.base_1973 in
  Format.printf "Components after all six projects:@.";
  Format.printf "%a@." C.Report.component_listing
    (List.filter C.Component.in_kernel final);
  Format.printf "Step-by-step effect:@.";
  List.iter
    (fun (s : C.Restructure.summary) ->
      Format.printf "  %-24s -%6d source (-%d PL/I-equiv) : %s@."
        s.C.Restructure.step_name s.C.Restructure.source_saved
        s.C.Restructure.pl1_equiv_saved s.C.Restructure.note)
    summaries;
  let remaining =
    C.Inventory.total_pl1_equivalent (C.Inventory.kernel final)
  in
  Format.printf
    "@.Conclusion check: the kernel of a general-purpose system remains a \
     large program — %s PL/I-equivalent lines here (paper: \"30,000 lines \
     of source code in this case study\", after three years' growth).@."
    (C.Report.round_k remaining)

let entry_points () =
  Bench_util.section "S1" "Entry-point census (paper p.31-32)";
  Format.printf "%a@." C.Report.entry_point_table ();
  (* The live analogue in this reproduction. *)
  let k = Bench_util.boot_new () in
  Format.printf
    "live reproduction: %d gates defined, %d user-callable (scaled-down \
     analogue of 1,200/157)@."
    (K.Gate.registered (K.Kernel.gate k))
    (K.Gate.user_callable (K.Kernel.gate k))

let file_store () =
  Bench_util.section "S4" "Specialising to a file store (paper pp. 35, 37)";
  let final, _ = C.Restructure.apply_all C.Inventory.base_1973 in
  let low, high = C.Restructure.specialize_file_store_estimate final in
  let remaining =
    C.Inventory.total_pl1_equivalent (C.Inventory.kernel final)
  in
  Format.printf
    "remaining kernel: %s PL/I-equiv; specialisation sheds %s-%s (15-25%%) — \
     \"not ... a very big reduction in this number — maybe 20%%\"@."
    (C.Report.round_k remaining) (C.Report.round_k low)
    (C.Report.round_k high)

let network_growth () =
  Bench_util.section "S6" "Network code growth per attached network (p.33-34)";
  let k = Bench_util.boot_new () in
  let old_net =
    Multics_services.Network.create ~kernel:k
      ~variant:Multics_services.Network.Per_network_in_kernel
  in
  let new_net =
    Multics_services.Network.create ~kernel:k
      ~variant:Multics_services.Network.Generic_demux
  in
  Format.printf "  %-10s %22s %22s@." "networks" "per-network in kernel"
    "generic demultiplexer";
  List.iter
    (fun n ->
      Format.printf "  %-10d %18d lines %18d lines@." n
        (Multics_services.Network.kernel_lines old_net ~networks:n)
        (Multics_services.Network.kernel_lines new_net ~networks:n))
    [ 1; 2; 3; 4 ];
  Format.printf
    "@.paper: 7,000 lines for two networks \"may shrink to less than \
     1,000\" and then grow only slightly per network.@."

let run () =
  table1 ();
  entry_points ();
  file_store ();
  network_growth ()
