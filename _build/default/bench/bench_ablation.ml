(* Design-choice ablations DESIGN.md calls out: the pluggable level-2
   scheduling policy and Huber's dedicated page-cleaning processes. *)

module K = Multics_kernel
module Hw = Multics_hw

(* A1: level-2 scheduling policy.  Interactive processes (short bursts
   separated by waits) share the machine with batch compute; multilevel
   feedback should protect interactive response. *)
let scheduler_policies () =
  Bench_util.section "A1"
    "Ablation: level-2 scheduling policy (FCFS / round-robin / multilevel)";
  let run policy =
    let config = { K.Kernel.default_config with K.Kernel.scheduler = policy } in
    let k = K.Kernel.boot config in
    K.Kernel.mkdir k ~path:">home" ~acl:Bench_util.open_acl
      ~label:Bench_util.low;
    (* Batch hogs. *)
    for i = 1 to 3 do
      ignore
        (K.Kernel.spawn k ~pname:(Printf.sprintf "batch%d" i)
           (K.Workload.compute_bound ~steps:120 ~step_ns:3_000))
    done;
    (* An "interactive" process: handles 8 requests, each arriving via
       an eventcount advanced by a ticker process. *)
    let interactive =
      K.Workload.concat
        (List.init 8 (fun i ->
             [| K.Workload.Await_ec { ec = "tty"; value = i + 1 };
                K.Workload.Compute 2_000 |]))
    in
    let ticker =
      K.Workload.concat
        (List.init 8 (fun _ ->
             [| K.Workload.Compute 20_000; K.Workload.Advance_ec { ec = "tty" } |]))
    in
    let interactive_pid = K.Kernel.spawn k ~pname:"tty_user" interactive in
    ignore (K.Kernel.spawn k ~pname:"ticker" ticker);
    assert (K.Kernel.run_to_completion k);
    let p = K.User_process.proc (K.Kernel.user_process k) interactive_pid in
    (K.Kernel.now k, p.K.User_process.cpu_ns, K.Kernel.now k)
  in
  Format.printf "  %-34s %14s@." "policy" "total elapsed";
  List.iter
    (fun (name, policy) ->
      let elapsed, _, _ = run policy in
      Format.printf "  %-34s %11.0f us@." name (Bench_util.us elapsed))
    [ ("FCFS (run to completion)", K.Scheduler.Fcfs);
      ("round-robin, quantum 16", K.Scheduler.Round_robin { quantum = 16 });
      ("multilevel feedback, 3 levels", K.Scheduler.Multilevel { levels = 3; base_quantum = 8 }) ];
  Format.printf
    "@.  FCFS lets batch processes monopolise the virtual processors; the \
     preemptive policies interleave them.  The policy is one pluggable \
     module above the fixed level-1 multiplexer — the two-level split \
     localises the choice.@."

(* A2: the page-cleaning daemon.  With it, eviction happens at low
   priority ahead of demand; without it every fault evicts inline. *)
let cleaner_daemon () =
  Bench_util.section "A2"
    "Ablation: dedicated page-cleaning daemon vs inline eviction (Huber)";
  let run use_cleaner_daemon =
    let config =
      { K.Kernel.default_config with
        K.Kernel.hw = Hw.Hw_config.with_frames Hw.Hw_config.kernel_multics 44;
        core_frames = 24; use_cleaner_daemon }
    in
    let k = K.Kernel.boot config in
    K.Kernel.mkdir k ~path:">home" ~acl:Bench_util.open_acl
      ~label:Bench_util.low;
    for seed = 1 to 2 do
      ignore
        (K.Kernel.spawn k ~pname:(Printf.sprintf "w%d" seed)
           (K.Workload.concat
              [ Bench_util.file_writer ~dir:">home"
                  ~name:(Printf.sprintf "ws%d" seed) ~pages:12;
                K.Workload.random_touches ~seg_reg:0 ~pages:12 ~count:150
                  ~write_pct:40 ~seed ]))
    done;
    assert (K.Kernel.run_to_completion k);
    let pfm = K.Kernel.page_frame k in
    (K.Kernel.now k, K.Page_frame.evictions pfm, K.Page_frame.pages_cleaned pfm)
  in
  let with_elapsed, with_evictions, with_cleaned = run true in
  let wo_elapsed, wo_evictions, wo_cleaned = run false in
  Format.printf "  %-28s %14s %12s %14s@." "" "elapsed" "evictions"
    "cleaned behind";
  Format.printf "  %-28s %11.0f us %12d %14d@." "with cleaning daemon"
    (Bench_util.us with_elapsed) with_evictions with_cleaned;
  Format.printf "  %-28s %11.0f us %12d %14d@." "inline only"
    (Bench_util.us wo_elapsed) wo_evictions wo_cleaned;
  Format.printf
    "@.  the daemon writes dirty pages behind at low priority so fault-time \
     eviction finds clean victims; on a write-heavy working set part of \
     that work is wasted on pages that are re-dirtied.  The paper hedged \
     exactly this: the low-priority overlap \"represents a performance \
     improvement of uncertain magnitude\" — and the ablation shows why the \
     authors would not promise more.@."

(* A3: initialisation in a previous incarnation (Luniewski), measured
   on the real reboot path: a cold boot builds the root and tables; a
   reboot merely reads the persisted hierarchy back. *)
let previous_incarnation () =
  Bench_util.section "A3"
    "Ablation: cold boot vs boot from a previous incarnation (Luniewski)";
  (* Build a decent-sized world first. *)
  let k1 = K.Kernel.boot K.Kernel.default_config in
  K.Kernel.mkdir k1 ~path:">home" ~acl:Bench_util.open_acl
    ~label:Bench_util.low;
  for i = 1 to 6 do
    K.Kernel.mkdir k1
      ~path:(Printf.sprintf ">home>u%d" i)
      ~acl:Bench_util.open_acl ~label:Bench_util.low;
    for j = 1 to 4 do
      K.Kernel.create_file k1
        ~path:(Printf.sprintf ">home>u%d>f%d" i j)
        ~acl:Bench_util.open_acl ~label:Bench_util.low
    done
  done;
  K.Kernel.shutdown k1;
  let cold = K.Kernel.boot K.Kernel.default_config in
  let cold_ns = K.Meter.total (K.Kernel.meter cold) in
  let warm = K.Kernel.reboot K.Kernel.default_config ~from:k1 in
  let warm_ns = K.Meter.total (K.Kernel.meter warm) in
  Format.printf
    "  cold boot (empty system):          %8.0f us of kernel work@."
    (Bench_util.us cold_ns);
  Format.printf
    "  reboot over 31-node hierarchy:     %8.0f us (reading tables the \
     prior incarnation built)@."
    (Bench_util.us warm_ns);
  let census_old = Multics_services.Init_service.run Multics_services.Init_service.In_kernel in
  let census_new =
    Multics_services.Init_service.run Multics_services.Init_service.Previous_incarnation
  in
  Format.printf
    "  census: the extraction removes %d - %d = %d lines from the kernel@."
    census_old.Multics_services.Init_service.kernel_lines
    census_new.Multics_services.Init_service.kernel_lines
    (census_old.Multics_services.Init_service.kernel_lines
    - census_new.Multics_services.Init_service.kernel_lines)

let run () =
  scheduler_policies ();
  cleaner_daemon ();
  previous_incarnation ()
