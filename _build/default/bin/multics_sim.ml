(* multics_sim: command-line front end to the simulator.

     dune exec bin/multics_sim.exe -- boot
     dune exec bin/multics_sim.exe -- run --kernel new --workload churn
     dune exec bin/multics_sim.exe -- run --kernel legacy --frames 40
     dune exec bin/multics_sim.exe -- audit
     dune exec bin/multics_sim.exe -- census
*)

module K = Multics_kernel
module L = Multics_legacy
module Dg = Multics_depgraph
module Aim = Multics_aim
open Cmdliner

let low = Aim.Label.system_low
let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

let file_writer ~dir ~name ~pages =
  K.Workload.concat
    [ [| K.Workload.Create_file { dir; name };
         K.Workload.Initiate { path = dir ^ ">" ^ name; reg = 0 } |];
      K.Workload.sequential_write ~seg_reg:0 ~pages ]

let workload_of_name = function
  | "writer" ->
      [ ("writer", file_writer ~dir:">home" ~name:"data" ~pages:8) ]
  | "churn" ->
      [ ("churn", K.Workload.file_churn ~dir:">home" ~files:6 ~pages_each:2 ~seed:3) ]
  | "thrash" ->
      [ ("t1",
         K.Workload.concat
           [ file_writer ~dir:">home" ~name:"big1" ~pages:14;
             K.Workload.random_touches ~seg_reg:0 ~pages:14 ~count:200
               ~write_pct:50 ~seed:1 ]);
        ("t2",
         K.Workload.concat
           [ file_writer ~dir:">home" ~name:"big2" ~pages:14;
             K.Workload.random_touches ~seg_reg:0 ~pages:14 ~count:200
               ~write_pct:50 ~seed:2 ]) ]
  | "ipc" ->
      [ ("waiter",
         [| K.Workload.Await_ec { ec = "ping"; value = 1 };
            K.Workload.Advance_ec { ec = "pong" }; K.Workload.Terminate |]);
        ("pinger",
         [| K.Workload.Compute 50_000; K.Workload.Advance_ec { ec = "ping" };
            K.Workload.Await_ec { ec = "pong"; value = 1 };
            K.Workload.Terminate |]) ]
  | name -> failwith ("unknown workload: " ^ name ^ " (writer|churn|thrash|ipc)")

(* ------------------------------------------------------------------ *)

let frames_arg =
  let doc = "Primary memory size in page frames." in
  Arg.(value & opt int 256 & info [ "frames" ] ~doc)

let kernel_arg =
  let doc = "Which kernel: $(b,new) (Kernel/Multics) or $(b,legacy)." in
  Arg.(value & opt string "new" & info [ "kernel" ] ~doc)

let workload_arg =
  let doc = "Workload: writer, churn, thrash or ipc." in
  Arg.(value & opt string "writer" & info [ "workload" ] ~doc)

let boot_cmd =
  let run frames =
    let config =
      { K.Kernel.default_config with
        K.Kernel.hw =
          Multics_hw.Hw_config.with_frames Multics_hw.Hw_config.kernel_multics
            frames }
    in
    let k = K.Kernel.boot config in
    Format.printf "booted Kernel/Multics on %a@."
      Multics_hw.Hw_config.pp (K.Kernel.config k).K.Kernel.hw;
    Format.printf "%a@." K.Kernel.pp_report k
  in
  Cmd.v (Cmd.info "boot" ~doc:"Boot Kernel/Multics and print its report.")
    Term.(const run $ frames_arg)

let run_cmd =
  let run frames kernel workload =
    let programs = workload_of_name workload in
    match kernel with
    | "new" ->
        let config =
          { K.Kernel.default_config with
            K.Kernel.hw =
              Multics_hw.Hw_config.with_frames
                Multics_hw.Hw_config.kernel_multics frames }
        in
        let k = K.Kernel.boot config in
        K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
        List.iter
          (fun (pname, program) -> ignore (K.Kernel.spawn k ~pname program))
          programs;
        let ok = K.Kernel.run_to_completion k in
        Format.printf "all processes completed: %b@.%a@." ok K.Kernel.pp_report
          k
    | "legacy" ->
        let config =
          { L.Old_supervisor.default_config with
            L.Old_supervisor.hw =
              Multics_hw.Hw_config.with_frames
                Multics_hw.Hw_config.legacy_multics frames }
        in
        let s = L.Old_supervisor.boot config in
        L.Old_supervisor.mkdir s ~path:">home" ~acl:open_acl;
        List.iter
          (fun (pname, program) ->
            ignore (L.Old_supervisor.spawn s ~pname program))
          programs;
        let ok = L.Old_supervisor.run_to_completion s in
        Format.printf "all processes completed: %b@.%a@." ok
          L.Old_supervisor.pp_report s
    | other -> failwith ("unknown kernel: " ^ other)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a demo workload on either kernel.")
    Term.(const run $ frames_arg $ kernel_arg $ workload_arg)

let audit_cmd =
  let run () =
    List.iter
      (fun g -> Format.printf "%a@." Dg.Render.layered g)
      [ Dg.Figures.fig2_superficial (); Dg.Figures.fig3_actual ();
        Dg.Figures.fig4_redesign (); K.Registry.declared_graph () ];
    let k = K.Kernel.boot K.Kernel.default_config in
    K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
    ignore
      (K.Kernel.spawn k ~pname:"w" (file_writer ~dir:">home" ~name:"f" ~pages:6));
    ignore (K.Kernel.run_to_completion k);
    Format.printf "%a@." Dg.Conformance.report (K.Kernel.dependency_audit k)
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Print the dependency structures and run the conformance audit.")
    Term.(const run $ const ())

let census_cmd =
  let run () =
    Format.printf "%a@." Multics_census.Report.size_table ();
    Format.printf "%a@." Multics_census.Report.entry_point_table ()
  in
  Cmd.v
    (Cmd.info "census" ~doc:"Print the kernel-size table and entry census.")
    Term.(const run $ const ())

let salvage_cmd =
  let run () =
    let k = K.Kernel.boot K.Kernel.default_config in
    K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
    ignore (K.Kernel.spawn k ~pname:"w"
              (file_writer ~dir:">home" ~name:"f" ~pages:6));
    ignore (K.Kernel.run_to_completion k);
    (* Inject crash damage, then salvage. *)
    let disk = (K.Kernel.machine k).Multics_hw.Machine.disk in
    ignore (Multics_hw.Disk.alloc_record disk ~pack:0);
    Format.printf "scan before repair:@.";
    List.iter
      (fun f -> Format.printf "  %a@." K.Salvager.pp_finding f)
      (K.Salvager.scan k);
    let repaired = K.Salvager.repair k in
    Format.printf "repaired %d findings; scan after:@." repaired;
    (match K.Salvager.scan k with
    | [] -> Format.printf "  clean@."
    | rest -> List.iter (fun f -> Format.printf "  %a@." K.Salvager.pp_finding f) rest);
    match K.Invariants.check k with
    | [] -> Format.printf "invariants: clean@."
    | ps -> List.iter (fun p -> Format.printf "invariant: %s@." p) ps
  in
  Cmd.v
    (Cmd.info "salvage"
       ~doc:"Demonstrate the salvager: inject crash damage, scan, repair.")
    Term.(const run $ const ())

let dot_cmd =
  let run () =
    Format.printf "%a@." Dg.Render.dot (Dg.Figures.fig4_redesign ())
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Figure 4 as Graphviz for rendering.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "multics_sim" ~version:"1.0"
      ~doc:"Simulator for the Multics kernel design project (SOSP 1977)."
  in
  exit (Cmd.eval (Cmd.group info [ boot_cmd; run_cmd; audit_cmd; census_cmd; salvage_cmd; dot_cmd ]))
