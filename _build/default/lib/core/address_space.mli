(** The address space manager.

    Owns descriptor segments.  Each loaded user process has one,
    resident while the process is bound to a virtual processor; each
    processor also carries a {e system} descriptor table (in a core
    segment, selected by the second descriptor base register) so that
    kernel modules never depend on the machinery behind user address
    spaces (paper p.19).

    Missing-segment faults land here: the manager consults the known
    segment table for the uid and grants, has the segment manager
    activate it, plants the SDW, and registers the connection so the
    segment manager can sever it on relocation or deactivation. *)

type t

val create :
  machine:Multics_hw.Machine.t -> meter:Meter.t -> tracer:Tracer.t ->
  core:Core_segment.t -> segment:Segment.t -> known:Known_segment.t ->
  max_spaces:int -> t

val system_table : t -> Multics_hw.Cpu.dbr
(** The per-processor system descriptor table (shared here: our CPUs are
    identical, one table suffices). *)

val install_system_dbr : t -> Multics_hw.Cpu.t -> unit

val create_space : t -> caller:string -> proc:int -> unit
(** Raises [Failure] when the descriptor-segment pool is exhausted. *)

val destroy_space : t -> caller:string -> proc:int -> unit

val dbr_of : t -> proc:int -> Multics_hw.Cpu.dbr

val handle_missing_segment :
  t -> caller:string -> proc:int -> segno:int ->
  [ `Retry | `Error of string ]
(** Connect the faulting segment number: KST lookup, activation, SDW
    construction from the recorded grant, connection registration. *)

val disconnect : t -> caller:string -> proc:int -> segno:int -> unit
(** Fault the SDW and unregister the connection (termination). *)

val connections : t -> int
(** Total live SDW connections, for tests. *)
