lib/core/name_space.ml: Acl Cost Directory Gate Hashtbl Ids List Meter Multics_aim Printf Registry String Tracer
