lib/core/name_space.ml: Cost Directory Gate List Meter Registry String Tracer
