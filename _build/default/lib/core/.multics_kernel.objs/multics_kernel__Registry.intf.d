lib/core/registry.mli: Cost Multics_depgraph
