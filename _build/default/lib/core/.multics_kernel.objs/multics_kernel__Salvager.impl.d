lib/core/salvager.ml: Array Directory Format Hashtbl Ids Invariants Kernel List Multics_hw Quota_cell User_process Volume
