lib/core/scheduler.ml: Array Hashtbl Option Queue
