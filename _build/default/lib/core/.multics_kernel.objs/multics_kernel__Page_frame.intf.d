lib/core/page_frame.mli: Core_segment Meter Multics_hw Multics_sync Quota_cell Tracer Volume Vp
