lib/core/page_frame.ml: Array Core_segment Cost Hashtbl List Meter Multics_hw Multics_sync Printf Quota_cell Registry Tracer Volume Vp
