lib/core/core_segment.ml: Cost List Meter Multics_hw Printf Registry
