lib/core/volume.mli: Ids Meter Multics_hw Tracer
