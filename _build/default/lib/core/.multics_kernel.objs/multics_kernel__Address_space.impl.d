lib/core/address_space.ml: Acl Array Core_segment Cost Hashtbl Known_segment List Meter Multics_hw Printf Registry Segment Tracer
