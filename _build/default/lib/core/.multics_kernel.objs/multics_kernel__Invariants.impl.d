lib/core/invariants.ml: Array Directory Format Hashtbl Ids Kernel List Multics_hw Option Page_frame Printf Quota_cell Segment Volume
