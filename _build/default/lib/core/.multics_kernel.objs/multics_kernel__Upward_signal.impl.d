lib/core/upward_signal.ml: Cost Ids List Meter
