lib/core/vp.mli: Core_segment Meter Multics_hw Multics_sync Tracer
