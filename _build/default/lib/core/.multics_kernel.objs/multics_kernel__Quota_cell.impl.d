lib/core/quota_cell.ml: Array Core_segment Cost List Meter Multics_hw Printf Registry Tracer Volume
