lib/core/tracer.ml: List Map Multics_depgraph Option
