lib/core/tracer.ml: Hashtbl List Map Multics_depgraph Option
