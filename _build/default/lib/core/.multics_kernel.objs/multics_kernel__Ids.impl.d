lib/core/ids.ml: Char Format Int Stdlib String
