lib/core/known_segment.mli: Acl Ids Meter Multics_hw Quota_cell Segment Tracer
