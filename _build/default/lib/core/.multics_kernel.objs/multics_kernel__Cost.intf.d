lib/core/cost.mli:
