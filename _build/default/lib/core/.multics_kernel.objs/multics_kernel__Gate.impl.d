lib/core/gate.ml: Cost Directory Hashtbl List Meter Printf Registry Tracer Upward_signal
