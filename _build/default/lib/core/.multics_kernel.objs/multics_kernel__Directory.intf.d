lib/core/directory.mli: Acl Ids Known_segment Meter Multics_aim Multics_hw Quota_cell Segment Tracer Volume
