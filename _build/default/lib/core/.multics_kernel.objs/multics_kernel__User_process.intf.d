lib/core/user_process.mli: Acl Address_space Ids Known_segment Meter Multics_aim Multics_hw Multics_sync Scheduler Segment Tracer Vp Workload
