lib/core/user_process.ml: Acl Address_space Array Cost Hashtbl Ids Known_segment List Meter Multics_aim Multics_hw Multics_sync Printf Quota_cell Registry Scheduler Segment Tracer Vp Workload
