lib/core/workload.ml: Array Format List Multics_hw Printf
