lib/core/tracer.mli: Multics_depgraph
