lib/core/acl.mli: Format
