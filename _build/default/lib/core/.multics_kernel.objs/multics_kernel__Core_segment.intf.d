lib/core/core_segment.mli: Meter Multics_hw
