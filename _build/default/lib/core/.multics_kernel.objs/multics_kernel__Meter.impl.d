lib/core/meter.ml: Cost Hashtbl List Option
