lib/core/salvager.mli: Format Kernel
