lib/core/acl.ml: Format List
