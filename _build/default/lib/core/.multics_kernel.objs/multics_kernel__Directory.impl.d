lib/core/directory.ml: Acl Bytes Char Cost Hashtbl Ids Known_segment List Marshal Meter Multics_aim Multics_hw Quota_cell Registry Segment Tracer Volume
