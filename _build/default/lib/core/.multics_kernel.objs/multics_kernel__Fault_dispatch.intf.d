lib/core/fault_dispatch.mli: Address_space Gate Known_segment Meter Multics_hw Multics_sync Page_frame Tracer
