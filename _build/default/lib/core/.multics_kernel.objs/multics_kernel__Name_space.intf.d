lib/core/name_space.mli: Directory Gate Ids Meter Tracer
