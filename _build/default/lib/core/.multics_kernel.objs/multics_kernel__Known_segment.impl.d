lib/core/known_segment.ml: Acl Cost Hashtbl Ids Meter Multics_hw Printf Quota_cell Registry Segment Tracer
