lib/core/address_space.mli: Core_segment Known_segment Meter Multics_hw Segment Tracer
