lib/core/invariants.mli: Kernel Quota_cell
