lib/core/gate.mli: Directory Meter Tracer Upward_signal
