lib/core/scheduler.mli:
