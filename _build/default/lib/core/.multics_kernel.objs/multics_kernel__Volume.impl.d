lib/core/volume.ml: Array Cost Hashtbl Ids List Meter Multics_hw Registry Tracer
