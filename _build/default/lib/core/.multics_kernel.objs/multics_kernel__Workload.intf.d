lib/core/workload.mli: Format
