lib/core/vp.ml: Array Core_segment Cost Meter Multics_hw Multics_sync Printf Tracer
