lib/core/segment.mli: Core_segment Ids Meter Multics_hw Page_frame Quota_cell Tracer Upward_signal Volume
