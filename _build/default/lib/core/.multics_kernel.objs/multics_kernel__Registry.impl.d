lib/core/registry.ml: Cost List Multics_depgraph
