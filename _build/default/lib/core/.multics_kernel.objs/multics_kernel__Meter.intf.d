lib/core/meter.mli: Cost
