lib/core/quota_cell.mli: Core_segment Meter Multics_hw Tracer Volume
