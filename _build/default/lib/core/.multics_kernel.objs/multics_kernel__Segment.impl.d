lib/core/segment.ml: Array Core_segment Cost Hashtbl Ids List Meter Multics_hw Page_frame Printf Quota_cell Registry Tracer Upward_signal Volume
