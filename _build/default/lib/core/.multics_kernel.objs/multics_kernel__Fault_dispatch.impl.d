lib/core/fault_dispatch.ml: Address_space Cost Gate Known_segment Meter Multics_hw Multics_sync Page_frame Printf Registry Tracer
