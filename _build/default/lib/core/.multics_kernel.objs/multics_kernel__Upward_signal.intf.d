lib/core/upward_signal.mli: Ids Meter
