module Hw = Multics_hw

let expected_quota kernel =
  let volume = Kernel.volume kernel in
  let quota = Kernel.quota kernel in
  let attribution = Directory.quota_attribution (Kernel.directory kernel) in
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (uid, cell) ->
      if cell <> Quota_cell.no_cell then
        match Volume.locate volume ~uid with
        | None -> ()
        | Some (pack, index) -> (
            match Volume.vtoc volume ~caller:"invariants" ~pack ~index with
            | exception Not_found -> ()
            | vtoc ->
                let pages =
                  Array.fold_left
                    (fun acc v -> if v <> Hw.Disk.unallocated then acc + 1 else acc)
                    0 vtoc.Hw.Disk.file_map
                in
                let old = Option.value ~default:0 (Hashtbl.find_opt totals cell) in
                Hashtbl.replace totals cell (old + pages)))
    attribution;
  (* Cells with no attributed pages still count, at zero. *)
  List.map
    (fun (cell, _used, _limit) ->
      (cell, Option.value ~default:0 (Hashtbl.find_opt totals cell)))
    (Quota_cell.registered quota)

let check kernel =
  let problems = ref [] in
  let problem fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  let machine = Kernel.machine kernel in
  let mem = machine.Hw.Machine.mem in
  let pfm = Kernel.page_frame kernel in
  let sm = Kernel.segment kernel in
  let volume = Kernel.volume kernel in
  let quota = Kernel.quota kernel in

  (* 1. Frame table vs. page tables: a used frame's PTW must be present
     and point back at the frame. *)
  let used = ref 0 in
  Page_frame.iter_used pfm (fun ~frame ~ptw_abs ->
      incr used;
      let ptw = Hw.Ptw.read mem ptw_abs in
      if not ptw.Hw.Ptw.valid then
        problem "frame %d: owning PTW %d invalid" frame ptw_abs
      else if not ptw.Hw.Ptw.present then
        (* a transit in flight is the one legitimate case *)
        ()
      else if ptw.Hw.Ptw.arg <> frame then
        problem "frame %d: PTW points at frame %d" frame ptw.Hw.Ptw.arg);
  if !used + Page_frame.free_frames pfm <> Page_frame.n_frames pfm then
    problem "frame accounting: %d used + %d free <> %d total" !used
      (Page_frame.free_frames pfm) (Page_frame.n_frames pfm);

  (* 2. AST vs. locator. *)
  List.iter
    (fun slot ->
      let uid = Segment.slot_uid sm ~slot in
      let home = Segment.slot_home sm ~slot in
      match Volume.locate volume ~uid with
      | None -> problem "AST slot %d: uid %d not in locator" slot (Ids.to_int uid)
      | Some located ->
          if located <> home then
            problem "AST slot %d: home %s but locator says %s" slot
              (Printf.sprintf "(%d,%d)" (fst home) (snd home))
              (Printf.sprintf "(%d,%d)" (fst located) (snd located)))
    (Segment.active_slots sm);

  (* 3. Record accounting across every VTOC: no double references, every
     reference allocated. *)
  let disk = machine.Hw.Machine.disk in
  let seen = Hashtbl.create 64 in
  for pack = 0 to Hw.Disk.n_packs disk - 1 do
    List.iter
      (fun (index, (vtoc : Hw.Disk.vtoc_entry)) ->
        Array.iteri
          (fun pageno handle ->
            if handle >= 0 then begin
              (match Hashtbl.find_opt seen handle with
              | Some (other_uid : int) ->
                  problem "record %d referenced by uid %d and uid %d" handle
                    other_uid vtoc.Hw.Disk.uid
              | None -> Hashtbl.replace seen handle vtoc.Hw.Disk.uid);
              if
                Hw.Disk.record_is_free disk
                  ~pack:(Hw.Disk.pack_of_handle handle)
                  ~record:(Hw.Disk.record_of_handle handle)
              then
                problem "uid %d page %d references free record %d (vtoc %d)"
                  vtoc.Hw.Disk.uid pageno handle index
            end)
          vtoc.Hw.Disk.file_map)
      (Hw.Disk.vtoc_entries disk ~pack)
  done;

  (* 4. Quota: each registered cell's count equals the allocated pages
     it controls. *)
  let expected = expected_quota kernel in
  List.iter
    (fun (cell, used, limit) ->
      if used < 0 || used > limit then
        problem "quota cell %d: used %d outside [0, %d]" cell used limit;
      match List.assoc_opt cell expected with
      | Some pages when pages <> used ->
          problem "quota cell %d: counts %d but controls %d allocated pages"
            cell used pages
      | _ -> ())
    (Quota_cell.registered quota);

  List.rev !problems
