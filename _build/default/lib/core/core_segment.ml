module Hw = Multics_hw

type region = { region_name : string; base : Hw.Addr.abs; words : int }

type t = {
  machine : Hw.Machine.t;
  meter : Meter.t;
  pool_base : Hw.Addr.abs;
  pool_words : int;
  first_frame : int;
  n_frames : int;
  mutable next : int;  (* offset of first free word in the pool *)
  mutable region_list : region list;
  mutable is_frozen : bool;
}

let name = Registry.core_segment_manager

let create ~machine ~meter ~reserved_frames =
  let total = Hw.Phys_mem.frames machine.Hw.Machine.mem in
  if reserved_frames <= 0 || reserved_frames >= total then
    invalid_arg "Core_segment.create: bad reservation";
  let first_frame = total - reserved_frames in
  { machine; meter;
    pool_base = Hw.Addr.frame_base first_frame;
    pool_words = reserved_frames * Hw.Addr.page_size;
    first_frame; n_frames = reserved_frames; next = 0; region_list = [];
    is_frozen = false }

let first_reserved_frame t = t.first_frame
let reserved_frames t = t.n_frames

let alloc t ~name:region_name ~words =
  if t.is_frozen then
    failwith "Core_segment.alloc: allocator frozen after initialisation";
  if words <= 0 then invalid_arg "Core_segment.alloc: words must be positive";
  if t.next + words > t.pool_words then
    failwith
      (Printf.sprintf "Core_segment.alloc: pool exhausted allocating %S" region_name);
  let region = { region_name; base = t.pool_base + t.next; words } in
  t.next <- t.next + words;
  t.region_list <- region :: t.region_list;
  region

let freeze t = t.is_frozen <- true
let frozen t = t.is_frozen
let regions t = List.rev t.region_list

let check region i =
  if i < 0 || i >= region.words then
    invalid_arg
      (Printf.sprintf "Core_segment: offset %d outside %S (%d words)" i
         region.region_name region.words)

let read t region i =
  check region i;
  Meter.charge t.meter ~manager:name Cost.Pl1
    t.machine.Hw.Machine.config.Hw.Hw_config.mem_access_cost;
  Hw.Phys_mem.read t.machine.Hw.Machine.mem (region.base + i)

let write t region i w =
  check region i;
  Meter.charge t.meter ~manager:name Cost.Pl1
    t.machine.Hw.Machine.config.Hw.Hw_config.mem_access_cost;
  Hw.Phys_mem.write t.machine.Hw.Machine.mem (region.base + i) w

let abs_of region i =
  check region i;
  region.base + i

let words_used t = t.next
