(** Level-2 scheduling policy (pluggable, for the scheduler ablation).

    Chooses which ready user process next receives a virtual processor.
    [Fcfs] never preempts; [Round_robin] rotates with a fixed quantum;
    [Multilevel] is a Multics-flavoured foreground/background ladder —
    a process that exhausts its quantum drops a level and later runs
    with a longer quantum, interactive processes stay on top. *)

type policy =
  | Fcfs
  | Round_robin of { quantum : int }  (** quantum in workload actions *)
  | Multilevel of { levels : int; base_quantum : int }

type t

val create : policy -> t
val policy : t -> policy

val enqueue : t -> int -> unit
(** A process becomes ready (first arrival or wakeup): top level. *)

val requeue_preempted : t -> int -> unit
(** The process exhausted its quantum: demote (multilevel) or rotate. *)

val next : t -> int option
(** Highest-priority ready process, removed from the queue. *)

val quantum_for : t -> int -> int
(** Quantum, in actions, the process should receive now. *)

val ready_count : t -> int
val decisions : t -> int
