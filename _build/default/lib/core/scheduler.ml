type policy =
  | Fcfs
  | Round_robin of { quantum : int }
  | Multilevel of { levels : int; base_quantum : int }

type t = {
  pol : policy;
  queues : int Queue.t array;  (* index 0 = highest priority *)
  level_of : (int, int) Hashtbl.t;
  mutable decisions : int;
}

let n_levels = function
  | Fcfs | Round_robin _ -> 1
  | Multilevel { levels; _ } -> max 1 levels

let create pol =
  { pol;
    queues = Array.init (n_levels pol) (fun _ -> Queue.create ());
    level_of = Hashtbl.create 16;
    decisions = 0 }

let policy t = t.pol

let enqueue t pid =
  Hashtbl.replace t.level_of pid 0;
  Queue.add pid t.queues.(0)

let requeue_preempted t pid =
  let level =
    match t.pol with
    | Fcfs | Round_robin _ -> 0
    | Multilevel { levels; _ } ->
        let current = Option.value ~default:0 (Hashtbl.find_opt t.level_of pid) in
        min (levels - 1) (current + 1)
  in
  Hashtbl.replace t.level_of pid level;
  Queue.add pid t.queues.(level)

let next t =
  let rec scan i =
    if i >= Array.length t.queues then None
    else
      match Queue.take_opt t.queues.(i) with
      | Some pid ->
          t.decisions <- t.decisions + 1;
          Some pid
      | None -> scan (i + 1)
  in
  scan 0

let quantum_for t pid =
  match t.pol with
  | Fcfs -> max_int
  | Round_robin { quantum } -> quantum
  | Multilevel { base_quantum; _ } ->
      let level = Option.value ~default:0 (Hashtbl.find_opt t.level_of pid) in
      base_quantum * (1 lsl level)

let ready_count t =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues

let decisions t = t.decisions
