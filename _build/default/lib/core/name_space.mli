(** The user-ring name manager (Bratt's extraction).

    Pathname expansion does not need kernel protection: this module runs
    conceptually in the user ring and walks a tree name one component at
    a time through the kernel's single-directory search gate.  Thanks to
    mythical identifiers the walk never learns whether the intervening
    directories exist; only the final initiation answers, and then only
    with "found" or "no access" (paper pp. 27-28).

    Multics path syntax: components separated by [>]; a leading [>]
    names the root. *)

type t

val create :
  meter:Meter.t -> tracer:Tracer.t -> gate:Gate.t -> directory:Directory.t ->
  t

val components : string -> string list
(** [">a>b>c" -> ["a"; "b"; "c"]]; tolerates a missing leading [>]. *)

val resolve_parent :
  t -> subject:Directory.subject -> ring:int -> path:string ->
  (Ids.uid * string, [ `Bad_path ]) result
(** Walk to the parent of the final component; returns (directory uid —
    possibly mythical — and the leaf name). *)

val initiate :
  t -> subject:Directory.subject -> ring:int -> path:string ->
  (Directory.target, [ `No_access | `Bad_path ]) result
(** Full resolution for use: walk, then ask the kernel for the target.
    Nonexistence and inaccessibility are indistinguishable. *)

val search_calls : t -> int
(** Gate crossings spent on search — the price of extraction, measured
    by the name-manager bench. *)
