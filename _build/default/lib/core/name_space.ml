type t = {
  meter : Meter.t;
  tracer : Tracer.t;
  gate : Gate.t;
  directory : Directory.t;
  mutable search_count : int;
}

let name = Registry.name_space

let create ~meter ~tracer ~gate ~directory =
  { meter; tracer; gate; directory; search_count = 0 }

let components path =
  String.split_on_char '>' path |> List.filter (fun c -> c <> "")

(* One kernel search through the gate. *)
let search t ~subject ~ring ~dir_uid ~component =
  t.search_count <- t.search_count + 1;
  (* The user-ring walker is a small, simple program. *)
  Meter.charge t.meter ~manager:name Cost.Pl1 (Cost.kernel_call / 2);
  Tracer.call t.tracer ~from:name ~to_:Registry.gate;
  match
    Gate.call t.gate ~name:"hcs_$fs_search" ~caller_ring:ring (fun () ->
        Directory.search t.directory ~caller:Registry.gate ~subject ~dir_uid
          ~name:component)
  with
  | Ok result -> result
  | Error `No_gate | Error `Ring_violation -> `No_entry

let resolve_parent t ~subject ~ring ~path =
  match List.rev (components path) with
  | [] -> Error `Bad_path
  | leaf :: rev_parents ->
      let parents = List.rev rev_parents in
      let rec walk dir_uid = function
        | [] -> Ok (dir_uid, leaf)
        | component :: rest -> (
            match search t ~subject ~ring ~dir_uid ~component with
            | `Found uid -> walk uid rest
            | `No_entry -> Error `Bad_path)
      in
      walk (Directory.root_uid t.directory) parents

let initiate t ~subject ~ring ~path =
  match resolve_parent t ~subject ~ring ~path with
  | Error `Bad_path -> Error `Bad_path
  | Ok (dir_uid, leaf) -> (
      Tracer.call t.tracer ~from:name ~to_:Registry.gate;
      match
        Gate.call t.gate ~name:"hcs_$initiate" ~caller_ring:ring (fun () ->
            Directory.initiate_target t.directory ~caller:Registry.gate
              ~subject ~dir_uid ~name:leaf)
      with
      | Ok (Ok target) -> Ok target
      | Ok (Error `No_access) -> Error `No_access
      | Error `No_gate | Error `Ring_violation -> Error `No_access)

let search_calls t = t.search_count
