(** Unique identifiers.

    Segment unique identifiers (uids) name segments independently of any
    address space; mythical identifiers implement Bratt's scheme for
    directory searches through inaccessible directories — they look like
    uids, are generated deterministically from the search key so that
    repeated probes are consistent, and can never collide with a real
    uid (disjoint tag bit). *)

type uid = private int

val generator : ?start:int -> unit -> unit -> uid
(** A fresh uid supply (uids start+1, start+2, ...; start defaults
    to 0).  A rebooted incarnation starts above the largest uid on
    disk. *)

val to_int : uid -> int

(** Reconstruct a uid read back from storage (a VTOC entry). *)
val of_int : int -> uid
val compare : uid -> uid -> int
val equal : uid -> uid -> bool

val is_mythical : uid -> bool

val mythical : parent:uid -> name:string -> uid
(** Deterministic mythical id for entry [name] under [parent]; stable
    across calls so a prober cannot distinguish real from mythical by
    re-asking. *)

val pp : Format.formatter -> uid -> unit
