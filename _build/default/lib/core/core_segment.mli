(** The core segment manager — the bottom of the lattice.

    Core segments are fixed regions of primary memory allocated at
    system initialisation; thereafter the only operations are processor
    reads and writes.  Every kernel manager stores its maps and tables
    here, which is what lets those managers avoid depending on the
    virtual memory they implement.  The allocator freezes at the end of
    initialisation: the number of core segments is fixed, their sizes
    cannot change, and they are permanently resident (paper p.19). *)

type region = { region_name : string; base : Multics_hw.Addr.abs; words : int }

type t

val create :
  machine:Multics_hw.Machine.t -> meter:Meter.t -> reserved_frames:int -> t
(** Reserve the top [reserved_frames] page frames of primary memory for
    core segments.  The page-frame manager must be told to stay below
    [first_reserved_frame]. *)

val first_reserved_frame : t -> int
val reserved_frames : t -> int

val alloc : t -> name:string -> words:int -> region
(** Raises [Failure] after {!freeze} or when the reserved pool is
    exhausted. *)

val freeze : t -> unit
val frozen : t -> bool
val regions : t -> region list

val read : t -> region -> int -> Multics_hw.Word.t
(** [read t r i] reads word [i] of the region; bounds-checked. *)

val write : t -> region -> int -> Multics_hw.Word.t -> unit

val abs_of : region -> int -> Multics_hw.Addr.abs
(** Absolute address of word [i], for handing to the hardware (page
    tables, descriptor tables). *)

val words_used : t -> int
