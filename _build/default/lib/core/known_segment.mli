(** The known segment manager.

    Each process has a known segment table (KST) mapping its segment
    numbers to segment unique identifiers, together with the access
    modes the directory manager granted at initiation and — crucially —
    the {e statically bound} quota cell of the nearest superior quota
    directory, supplied by whoever initiated the segment.  The KST is
    what lets the quota-fault chain run entirely downward: translate
    segment number to uid, hand the quota cell name to the segment
    manager, never look at the hierarchy (paper pp. 21-22). *)

type kst_entry = {
  ke_segno : int;
  ke_uid : Ids.uid;
  ke_cell : Quota_cell.handle;
  ke_mode : Acl.mode;
  ke_ring : int;  (** highest ring from which the segment is usable *)
}

type t

val create :
  machine:Multics_hw.Machine.t -> meter:Meter.t -> tracer:Tracer.t ->
  segment:Segment.t -> first_user_segno:int -> t

val create_kst : t -> caller:string -> proc:int -> unit
val destroy_kst : t -> caller:string -> proc:int -> unit

val make_known :
  t -> caller:string -> proc:int -> uid:Ids.uid -> cell:Quota_cell.handle ->
  mode:Acl.mode -> ring:int -> int
(** Assign (or return the existing) segment number for [uid] in the
    process's address space. *)

val terminate : t -> caller:string -> proc:int -> segno:int -> unit

val info : t -> proc:int -> segno:int -> kst_entry option

val handle_quota_fault :
  t -> caller:string -> proc:int -> segno:int -> pageno:int ->
  [ `Retry | `Error of string ]
(** The quota-fault chain: segno -> uid, activate if needed, then
    [Segment.grow] with the statically bound cell.  Full-pack handling
    happens below and surfaces as an upward signal, not here. *)

val ensure_active :
  t -> caller:string -> proc:int -> segno:int ->
  (int * kst_entry, [ `Not_known | `Gone | `No_slot ]) result
(** Activate (if necessary) the segment behind [segno]; returns its AST
    slot.  Used by the missing-segment path. *)

val known_count : t -> proc:int -> int
