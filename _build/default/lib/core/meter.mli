(** Accumulates the simulated cost of kernel work performed during one
    dispatch step, and per-manager totals for the benches.

    The event-driven machine advances the clock between steps; kernel
    code that runs "inline" during a step charges the meter, and the
    dispatcher folds the accumulated charge into the step's duration. *)

type t

val create : unit -> t

val charge : t -> manager:string -> Cost.language -> int -> unit
(** Add [Cost.scale lang ns] to the pending step cost and to the
    manager's total. *)

val charge_raw : t -> manager:string -> int -> unit
(** Charge without language scaling (e.g. pure waiting). *)

val take_pending : t -> int
(** Return and reset the cost accumulated since the last call. *)

val pending : t -> int
val total : t -> int
val by_manager : t -> (string * int) list
(** Sorted by manager name. *)

val reset : t -> unit
