type principal = { user : string; project : string }

type mode = { read : bool; write : bool; execute : bool }

let no_access = { read = false; write = false; execute = false }
let r = { read = true; write = false; execute = false }
let rw = { read = true; write = true; execute = false }
let rwe = { read = true; write = true; execute = true }
let re = { read = true; write = false; execute = true }

type entry = { who_user : string; who_project : string; mode : mode }

type t = entry list

let entry ?(project = "*") user mode =
  { who_user = user; who_project = project; mode }

let matches e p =
  (e.who_user = "*" || e.who_user = p.user)
  && (e.who_project = "*" || e.who_project = p.project)

let check acl p =
  match List.find_opt (fun e -> matches e p) acl with
  | Some e -> e.mode
  | None -> no_access

let permits acl p access =
  let mode = check acl p in
  match access with
  | `Read -> mode.read
  | `Write -> mode.write
  | `Execute -> mode.execute

let pp_principal ppf p = Format.fprintf ppf "%s.%s" p.user p.project

let pp_mode ppf m =
  Format.fprintf ppf "%s%s%s"
    (if m.read then "r" else "-")
    (if m.write then "w" else "-")
    (if m.execute then "e" else "-")

let pp ppf acl =
  List.iter
    (fun e ->
      Format.fprintf ppf "%s.%s:%a " e.who_user e.who_project pp_mode e.mode)
    acl
