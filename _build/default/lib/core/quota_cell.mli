(** The quota cell manager.

    The new design makes quota cells explicit objects: a cell is stored
    in the disk-pack table-of-contents entry of its quota directory and
    cached in a primary-memory table (a core segment) while any inferior
    segment is active.  The segment manager presents a segment's
    statically bound cell name whenever quota must be checked, so no
    upward search of the directory hierarchy ever happens (paper p.21).

    Cells are named by small integer handles valid while registered. *)

type t

type handle = int

val no_cell : handle
(** Pseudo-handle for segments outside any quota regime (kernel
    segments); charge/uncharge against it always succeed. *)

val create :
  machine:Multics_hw.Machine.t -> meter:Meter.t -> tracer:Tracer.t ->
  core:Core_segment.t -> volume:Volume.t -> max_cells:int -> t

val register :
  t -> caller:string -> pack:int -> vtoc_index:int -> limit:int -> used:int ->
  handle
(** Bring a quota cell into the cache (directory activation), creating
    it if the VTOC entry had none.  Raises [Failure] when the cache is
    full. *)

val lookup : t -> pack:int -> vtoc_index:int -> handle option

val charge : t -> caller:string -> handle -> int -> (unit, [ `Over_quota ]) result
(** Add pages to the cell's count, refusing past the limit. *)

val uncharge : t -> caller:string -> handle -> int -> unit
(** Credit pages back (zero-page reclamation, truncation, deletion). *)

val used : t -> handle -> int
val limit : t -> handle -> int

val set_limit : t -> caller:string -> handle -> int -> unit

val move_quota :
  t -> caller:string -> from:handle -> to_:handle -> int ->
  (unit, [ `Over_quota ]) result
(** Transfer limit between parent and child cells (the terminal-quota
    operation). *)

val sync : t -> caller:string -> handle -> unit
(** Write the cached values back to the owning VTOC entry. *)

val unregister : t -> caller:string -> handle -> unit
(** Sync and drop from the cache (directory deactivation). *)

val relocated : t -> handle -> pack:int -> vtoc_index:int -> unit
(** The owning directory segment moved packs; repoint the cell's home. *)

val registered : t -> (handle * int * int) list
(** Live cells as (handle, used, limit), for the invariant checker. *)

val over_quota_refusals : t -> int
