(** The declared dependency structure of this kernel implementation.

    These are the names used by every manager when charging the meter
    and recording trace edges, and the dependency declarations the
    runtime conformance audit checks observed calls against.  The graph
    is the implementation's own (it differs from the paper's Figure 4 in
    merging the segment and active-segment managers and in adding the
    gate layer on top); the test suite proves it loop-free. *)

val core_segment_manager : string
val virtual_processor_manager : string
val disk_pack_manager : string
val page_frame_manager : string
val quota_cell_manager : string
val segment_manager : string
val known_segment_manager : string
val address_space_manager : string
val user_process_manager : string
val directory_manager : string
val gate : string
val name_space : string

val manager_names : string list
(** All kernel managers, bottom-up. *)

val declared_graph : unit -> Multics_depgraph.Graph.t

val language : string -> Cost.language
(** Implementation language of each manager.  Kernel/Multics is coded
    entirely in the higher-level language (the paper's "exclusive use of
    PL/I"), so every manager answers [Pl1]. *)
