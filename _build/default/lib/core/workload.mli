(** Synthetic process programs.

    A user process executes a program: a finite sequence of actions the
    kernel facade interprets one per dispatch step.  Touches go through
    real address translation (and so take real simulated faults); the
    file-system actions call kernel gates; eventcount actions exercise
    user-level synchronisation and the level-1/level-2 wakeup path.

    Segment numbers are obtained dynamically ([Initiate] stores one in a
    process register; [Touch] names a register), since address spaces
    are per-process. *)

type action =
  | Touch of { seg_reg : int; pageno : int; offset : int; write : bool }
  | Compute of int  (** pure computation costing this many ns *)
  | Initiate of { path : string; reg : int }
      (** resolve a path, make the segment known, store the segno *)
  | Terminate_seg of { seg_reg : int }
  | Create_file of { dir : string; name : string }
  | Create_dir of { parent : string; name : string }
  | Delete of { path : string }
  | Set_quota of { path : string; pages : int }
  | Set_acl of { path : string; user : string; read : bool; write : bool }
      (** grant [user] modes on the entry at [path] *)
  | List_dir of { path : string }
  | Execute of { seg_reg : int; entry : int }
      (** run machine code from the segment in [seg_reg], starting at
          word [entry], until it halts — instruction fetch and operands
          go through real address translation and take real faults *)
  | Await_ec of { ec : string; value : int }
      (** block on a named user eventcount (releases the VP) *)
  | Advance_ec of { ec : string }
  | Terminate

type program = action array

val n_registers : int

val pp_action : Format.formatter -> action -> unit

(** Deterministic pseudo-random stream (LCG), so workloads are
    reproducible without global state. *)
module Prng : sig
  type t

  val create : seed:int -> t
  val int : t -> int -> int
  (** [int t bound] in [0, bound). *)

  val pct : t -> int -> bool
  (** True with probability [p]/100. *)
end

val sequential_write : seg_reg:int -> pages:int -> program
(** Touch pages 0..pages-1 with writes — the classic file-fill. *)

val sequential_read : seg_reg:int -> pages:int -> program

val random_touches :
  seg_reg:int -> pages:int -> count:int -> write_pct:int -> seed:int -> program
(** [count] touches over a [pages]-page working set. *)

val compute_bound : steps:int -> step_ns:int -> program

val file_churn : dir:string -> files:int -> pages_each:int -> seed:int -> program
(** Create files, fill them, delete some — the directory-heavy load. *)

val concat : program list -> program
(** Concatenate, dropping all but the final [Terminate]. *)

val with_setup : setup:action list -> program -> program
