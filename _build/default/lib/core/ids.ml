type uid = int

let mythical_tag = 1 lsl 40

let generator ?(start = 0) () =
  let next = ref start in
  fun () ->
    incr next;
    !next

let to_int u = u
let of_int i = i
let compare = Stdlib.compare
let equal = Int.equal
let is_mythical u = u land mythical_tag <> 0

(* FNV-1a over the search key, truncated below the tag bit. *)
let mythical ~parent ~name =
  let h = ref 0x3f29ce484222325 in
  let mix byte = h := (!h lxor byte) * 0x100000001b3 land max_int in
  mix (parent land 0xff);
  mix ((parent lsr 8) land 0xff);
  mix ((parent lsr 16) land 0xff);
  String.iter (fun ch -> mix (Char.code ch)) name;
  mythical_tag lor (!h land (mythical_tag - 1))

let pp ppf u =
  if is_mythical u then Format.fprintf ppf "uid~%x (mythical)" (u land 0xffffff)
  else Format.fprintf ppf "uid%d" u
