(** Access control lists.

    Every file and directory carries its own ACL, and — the Multics
    rule whose interaction with naming the paper dissects — "access to a
    file is determined entirely by the access control list for that
    file", never by the lists of directories above it.

    Principals are user.project pairs; entries match with ["*"]
    wildcards, first match wins, no match means no access. *)

type principal = { user : string; project : string }

type mode = { read : bool; write : bool; execute : bool }

val no_access : mode
val r : mode
val rw : mode
val rwe : mode
val re : mode

type entry = { who_user : string; who_project : string; mode : mode }
(** ["*"] in either position matches anything. *)

type t = entry list
(** Ordered; first matching entry decides. *)

val entry : ?project:string -> string -> mode -> entry
(** [entry "alice" rw] — project defaults to ["*"]. *)

val check : t -> principal -> mode
(** Effective mode for [principal] (first match, or {!no_access}). *)

val permits : t -> principal -> [ `Read | `Write | `Execute ] -> bool

val pp_principal : Format.formatter -> principal -> unit
val pp : Format.formatter -> t -> unit
