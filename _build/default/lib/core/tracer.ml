module PMap = Map.Make (struct
  type t = string * string

  let compare = compare
end)

type t = {
  mutable edges : int PMap.t;
  mutable total : int;
  cache_events : (string, int) Hashtbl.t;  (* "cache:event" -> count *)
}

let create () =
  { edges = PMap.empty; total = 0; cache_events = Hashtbl.create 8 }

let note_cache t ~cache ~event =
  let key = cache ^ ":" ^ event in
  let count = Option.value ~default:0 (Hashtbl.find_opt t.cache_events key) in
  Hashtbl.replace t.cache_events key (count + 1)

let cache_events t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.cache_events []
  |> List.sort compare

let call t ~from ~to_ =
  if from <> to_ then begin
    let count = Option.value ~default:0 (PMap.find_opt (from, to_) t.edges) in
    t.edges <- PMap.add (from, to_) (count + 1) t.edges;
    t.total <- t.total + 1
  end

let observed t =
  PMap.bindings t.edges |> List.map (fun ((f, to_), c) -> (f, to_, c))

let audit t ~declared =
  let conf = Multics_depgraph.Conformance.create ~declared in
  List.iter
    (fun (from, to_, count) ->
      for _ = 1 to count do
        Multics_depgraph.Conformance.record_call conf ~from ~to_
      done)
    (observed t);
  conf

let calls t = t.total

let reset t =
  t.edges <- PMap.empty;
  t.total <- 0;
  Hashtbl.reset t.cache_events
