type action =
  | Touch of { seg_reg : int; pageno : int; offset : int; write : bool }
  | Compute of int
  | Initiate of { path : string; reg : int }
  | Terminate_seg of { seg_reg : int }
  | Create_file of { dir : string; name : string }
  | Create_dir of { parent : string; name : string }
  | Delete of { path : string }
  | Set_quota of { path : string; pages : int }
  | Set_acl of { path : string; user : string; read : bool; write : bool }
  | List_dir of { path : string }
  | Execute of { seg_reg : int; entry : int }
  | Await_ec of { ec : string; value : int }
  | Advance_ec of { ec : string }
  | Terminate

type program = action array

let n_registers = 8

let pp_action ppf = function
  | Touch { seg_reg; pageno; offset; write } ->
      Format.fprintf ppf "touch r%d page %d offset %d %s" seg_reg pageno offset
        (if write then "w" else "r")
  | Compute ns -> Format.fprintf ppf "compute %dns" ns
  | Initiate { path; reg } -> Format.fprintf ppf "initiate %s -> r%d" path reg
  | Terminate_seg { seg_reg } -> Format.fprintf ppf "terminate r%d" seg_reg
  | Create_file { dir; name } -> Format.fprintf ppf "create %s/%s" dir name
  | Create_dir { parent; name } -> Format.fprintf ppf "mkdir %s/%s" parent name
  | Delete { path } -> Format.fprintf ppf "delete %s" path
  | Set_quota { path; pages } ->
      Format.fprintf ppf "set-quota %s %d pages" path pages
  | Set_acl { path; user; read; write } ->
      Format.fprintf ppf "set-acl %s %s:%s%s" path user
        (if read then "r" else "-")
        (if write then "w" else "-")
  | List_dir { path } -> Format.fprintf ppf "list %s" path
  | Execute { seg_reg; entry } ->
      Format.fprintf ppf "execute r%d entry %o" seg_reg entry
  | Await_ec { ec; value } -> Format.fprintf ppf "await %s >= %d" ec value
  | Advance_ec { ec } -> Format.fprintf ppf "advance %s" ec
  | Terminate -> Format.fprintf ppf "terminate"

module Prng = struct
  type t = { mutable state : int }

  let create ~seed = { state = (seed * 2 + 1) land 0x3fffffff }

  let next t =
    (* Numerical Recipes LCG constants, 32-bit. *)
    t.state <- ((t.state * 1664525) + 1013904223) land 0xffffffff;
    t.state lsr 8

  let int t bound =
    assert (bound > 0);
    next t mod bound

  let pct t p = int t 100 < p
end

let sequential_write ~seg_reg ~pages =
  Array.init (pages + 1) (fun i ->
      if i < pages then Touch { seg_reg; pageno = i; offset = 0; write = true }
      else Terminate)

let sequential_read ~seg_reg ~pages =
  Array.init (pages + 1) (fun i ->
      if i < pages then Touch { seg_reg; pageno = i; offset = 0; write = false }
      else Terminate)

let random_touches ~seg_reg ~pages ~count ~write_pct ~seed =
  let prng = Prng.create ~seed in
  Array.init (count + 1) (fun i ->
      if i < count then
        Touch
          { seg_reg; pageno = Prng.int prng pages;
            offset = Prng.int prng Multics_hw.Addr.page_size;
            write = Prng.pct prng write_pct }
      else Terminate)

let compute_bound ~steps ~step_ns =
  Array.init (steps + 1) (fun i -> if i < steps then Compute step_ns else Terminate)

let file_churn ~dir ~files ~pages_each ~seed =
  let prng = Prng.create ~seed in
  let buf = ref [] in
  let push a = buf := a :: !buf in
  for i = 0 to files - 1 do
    let fname = Printf.sprintf "churn_%d" i in
    push (Create_file { dir; name = fname });
    push (Initiate { path = dir ^ ">" ^ fname; reg = 0 });
    for p = 0 to pages_each - 1 do
      push (Touch { seg_reg = 0; pageno = p; offset = 0; write = true })
    done;
    push (Terminate_seg { seg_reg = 0 });
    if Prng.pct prng 50 then push (Delete { path = dir ^ ">" ^ fname })
  done;
  push Terminate;
  Array.of_list (List.rev !buf)

let concat programs =
  let actions =
    List.concat_map
      (fun p -> List.filter (fun a -> a <> Terminate) (Array.to_list p))
      programs
  in
  Array.of_list (actions @ [ Terminate ])

let with_setup ~setup program = concat [ Array.of_list setup; program ]
