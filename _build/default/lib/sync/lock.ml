type t = {
  lock_name : string;
  mutable owner : string option;
  mutable queue : (string * (unit -> unit)) list;  (* newest first *)
  mutable acquisitions : int;
  mutable contentions : int;
}

let create ?(name = "lock") () =
  { lock_name = name; owner = None; queue = []; acquisitions = 0;
    contentions = 0 }

let name t = t.lock_name

let try_acquire t ~owner =
  match t.owner with
  | Some _ -> false
  | None ->
      t.owner <- Some owner;
      t.acquisitions <- t.acquisitions + 1;
      true

let acquire_or_wait t ~owner ~notify =
  if try_acquire t ~owner then true
  else begin
    t.contentions <- t.contentions + 1;
    t.queue <- (owner, notify) :: t.queue;
    false
  end

let release t =
  match t.owner with
  | None -> invalid_arg (Printf.sprintf "Lock.release: %s not held" t.lock_name)
  | Some _ -> (
      match List.rev t.queue with
      | [] -> t.owner <- None
      | (next_owner, notify) :: rest ->
          t.queue <- List.rev rest;
          t.owner <- Some next_owner;
          t.acquisitions <- t.acquisitions + 1;
          notify ())

let holder t = t.owner
let acquisitions t = t.acquisitions
let contentions t = t.contentions
