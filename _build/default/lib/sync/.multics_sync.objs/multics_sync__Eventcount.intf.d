lib/sync/eventcount.mli:
