lib/sync/msg_queue.mli: Eventcount
