lib/sync/eventcount.ml: List
