lib/sync/sequencer.mli:
