lib/sync/lock.ml: List Printf
