lib/sync/msg_queue.ml: Eventcount Queue
