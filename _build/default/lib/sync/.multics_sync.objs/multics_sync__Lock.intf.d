lib/sync/lock.mli:
