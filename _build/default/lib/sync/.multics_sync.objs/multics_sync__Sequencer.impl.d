lib/sync/sequencer.ml:
