(** Global locks with contention accounting.

    Models the page-table lock the paper describes: a single lock
    serialising page control.  The simulation is sequential, so the lock
    records *logical* ownership across simulated time; contenders queue
    and are released in FIFO order.  Acquisition counts and contention
    counts feed the benches. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

val try_acquire : t -> owner:string -> bool
(** Take the lock if free. *)

val acquire_or_wait : t -> owner:string -> notify:(unit -> unit) -> bool
(** [true] when acquired immediately; otherwise queues [notify], which
    fires (with the lock already transferred to the queued owner) when
    the current holder releases. *)

val release : t -> unit
(** Raises [Invalid_argument] when not held.  Hands the lock to the next
    queued contender, if any, and fires its callback. *)

val holder : t -> string option
val acquisitions : t -> int
val contentions : t -> int
