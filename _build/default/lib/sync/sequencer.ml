type t = { seq_name : string; mutable next : int }

let create ?(name = "seq") () = { seq_name = name; next = 1 }
let name t = t.seq_name

let ticket t =
  let n = t.next in
  t.next <- n + 1;
  n

let issued t = t.next - 1
