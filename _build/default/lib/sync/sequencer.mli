(** Sequencers (Reed and Kanodia, 1977).

    A sequencer issues strictly increasing tickets.  Paired with an
    eventcount it provides mutual exclusion: take a ticket, await the
    eventcount reaching it, do the work, advance. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

val ticket : t -> int
(** Issue the next ticket; the first ticket is 1 so that awaiting it on
    a fresh eventcount (value 0) blocks until an advance. *)

val issued : t -> int
(** Number of tickets issued so far. *)
