type waiter = { threshold : int; notify : unit -> unit }

type t = {
  ec_name : string;
  mutable value : int;
  mutable pending : waiter list;  (* newest first *)
  mutable advance_count : int;
}

let create ?(name = "ec") () =
  { ec_name = name; value = 0; pending = []; advance_count = 0 }

let name t = t.ec_name
let read t = t.value

let advance t =
  t.value <- t.value + 1;
  t.advance_count <- t.advance_count + 1;
  let ready, still =
    List.partition (fun w -> w.threshold <= t.value) t.pending
  in
  t.pending <- still;
  (* Fire in registration order. *)
  List.iter (fun w -> w.notify ()) (List.rev ready)

let await t ~value ~notify =
  if t.value >= value then true
  else begin
    t.pending <- { threshold = value; notify } :: t.pending;
    false
  end

let waiters t = List.length t.pending
let advances t = t.advance_count
