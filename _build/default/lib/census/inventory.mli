(** The September 1973 census of the Multics supervisor.

    The paper publishes only aggregates: 44,000 source lines in ring
    zero (36,000 PL/I-equivalent), roughly 1,200 entry points of which
    157 were user-callable, and a 10,000-line Answering Service running
    in a trusted process.  The per-component decomposition here is a
    reconstruction chosen so that every aggregate the paper states —
    including the per-project reductions of its size table — comes out
    of the model rather than being hard-coded.  Totals are asserted in
    the test suite. *)

val base_1973 : Component.t list
(** Kernel components at the start of the project. *)

val ring_zero : Component.t list -> Component.t list
val kernel : Component.t list -> Component.t list
(** Everything not in the user domain. *)

val total_source : Component.t list -> int
val total_pl1_equivalent : Component.t list -> int
val total_entries : Component.t list -> int
val total_user_entries : Component.t list -> int

val find : Component.t list -> string -> Component.t
(** Raises [Not_found]. *)

val growth_factor_1973_to_1976 : float
(** Ring zero and the next outer ring "almost doubled in size" between
    the first census and the paper. *)
