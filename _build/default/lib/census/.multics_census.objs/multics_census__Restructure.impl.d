lib/census/restructure.ml: Component Inventory List
