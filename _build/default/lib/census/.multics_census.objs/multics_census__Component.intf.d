lib/census/component.mli: Format
