lib/census/report.ml: Component Format Inventory List Printf Restructure
