lib/census/report.mli: Component Format
