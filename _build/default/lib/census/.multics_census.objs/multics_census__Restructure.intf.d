lib/census/restructure.mli: Component
