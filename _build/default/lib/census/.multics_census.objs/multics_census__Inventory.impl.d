lib/census/inventory.ml: Component List
