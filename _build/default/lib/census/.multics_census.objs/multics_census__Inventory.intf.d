lib/census/inventory.mli: Component
