lib/census/component.ml: Float Format
