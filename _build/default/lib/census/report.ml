let round_k n = Printf.sprintf "%dK" ((n + 500) / 1000)

let component_listing ppf components =
  List.iter (fun comp -> Format.fprintf ppf "  %a@." Component.pp comp)
    components

let size_table ppf () =
  let base = Inventory.base_1973 in
  let ring0 = Inventory.total_source (Inventory.ring_zero base) in
  let answering =
    Component.source_lines (Inventory.find base "answering_service")
  in
  Format.fprintf ppf "Kernel Size, Start of Project@.";
  Format.fprintf ppf "  %-28s %6s@." "ring 0" (round_k ring0);
  Format.fprintf ppf "  %-28s %6s@." "Answering Service" (round_k answering);
  Format.fprintf ppf "  %-28s %6s@.@." "TOTAL" (round_k (ring0 + answering));
  let final, summaries = Restructure.apply_all base in
  Format.fprintf ppf "Reductions@.";
  let total_saved =
    List.fold_left
      (fun acc (s : Restructure.summary) ->
        Format.fprintf ppf "  %-28s %6s@." s.Restructure.step_name
          (round_k s.Restructure.source_saved);
        acc + s.Restructure.source_saved)
      0 summaries
  in
  Format.fprintf ppf "  %-28s %6s@.@." "TOTAL" (round_k total_saved);
  let remaining = ring0 + answering - total_saved in
  Format.fprintf ppf
    "Resulting kernel: %s source lines (%.0f%% of the original %s) — \
     \"roughly in half\"@."
    (round_k remaining)
    (100.0 *. float_of_int remaining /. float_of_int (ring0 + answering))
    (round_k (ring0 + answering));
  let low, high = Restructure.specialize_file_store_estimate final in
  Format.fprintf ppf
    "Specialising to a file store would remove at most a further %s-%s \
     (15-25%%)@."
    (round_k low) (round_k high)

let entry_point_table ppf () =
  let base = Inventory.base_1973 in
  let ring0 = Inventory.ring_zero base in
  let entries = Inventory.total_entries ring0 in
  let user_entries = Inventory.total_user_entries ring0 in
  Format.fprintf ppf "Ring-zero entry points: %d, of which %d user-callable@."
    entries user_entries;
  let linker = Inventory.find base "dynamic_linker" in
  let pct a b = 100.0 *. float_of_int a /. float_of_int b in
  Format.fprintf ppf
    "Linker extraction removes %d entries (%.1f%%) and %d user entries \
     (%.1f%%)@."
    linker.Component.entry_points
    (pct linker.Component.entry_points entries)
    linker.Component.user_entry_points
    (pct linker.Component.user_entry_points user_entries);
  let linker_src = Component.source_lines linker in
  Format.fprintf ppf
    "Linker is %.1f%% of ring-zero source (paper: ~5%% of object code)@."
    (pct linker_src (Inventory.total_source ring0))
