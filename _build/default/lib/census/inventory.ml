(* Reconstructed component decomposition of the September 1973 census.
   The aggregates the paper publishes all derive from these rows:

     ring-zero source lines        = 44,000   (paper p.32)
     ring-zero PL/I-equivalent     ~ 36,000   (paper p.31)
     ring-zero entry points        =  1,200   (paper p.31)
     user-callable entry points    =    157   (paper p.31)
     Answering Service             = 10,000   (paper p.31)
     dynamic linker                =  2,000   (table: "Linker 2K")
     name manager                  =  1,100   (2.5% of ring zero)
     network control               =  7,000   (about 20% of ring zero)
     initialization                =  2,100   ("2,000 lines of PL/1")

   The test suite asserts each of these sums. *)

let c name pl1 asm entries user region =
  { Component.name; pl1_lines = pl1; asm_lines = asm; entry_points = entries;
    user_entry_points = user; region }

let base_1973 =
  [ c "page_control" 1_200 5_000 60 2 Component.Ring_zero;
    c "traffic_control" 1_800 4_500 70 5 Component.Ring_zero;
    c "segment_control" 3_000 1_200 90 12 Component.Ring_zero;
    c "directory_control" 5_600 0 180 40 Component.Ring_zero;
    c "address_space_control" 2_300 800 80 15 Component.Ring_zero;
    c "disk_volume_control" 2_500 1_400 70 3 Component.Ring_zero;
    c "network_control" 7_000 0 160 25 Component.Ring_zero;
    c "dynamic_linker" 2_000 0 30 17 Component.Ring_zero;
    c "name_manager" 1_100 0 25 8 Component.Ring_zero;
    c "initialization" 1_700 400 55 0 Component.Ring_zero;
    c "fault_interrupt" 400 1_400 45 2 Component.Ring_zero;
    c "misc_services" 700 0 335 28 Component.Ring_zero;
    c "answering_service" 10_000 0 120 30 Component.Trusted_process ]

let ring_zero components =
  List.filter (fun comp -> comp.Component.region = Component.Ring_zero)
    components

let kernel components = List.filter Component.in_kernel components

let sum f components = List.fold_left (fun acc comp -> acc + f comp) 0 components

let total_source components = sum Component.source_lines components
let total_pl1_equivalent components = sum Component.pl1_equivalent components
let total_entries components = sum (fun comp -> comp.Component.entry_points) components

let total_user_entries components =
  sum (fun comp -> comp.Component.user_entry_points) components

let find components name =
  List.find (fun comp -> comp.Component.name = name) components

let growth_factor_1973_to_1976 = 1.9
