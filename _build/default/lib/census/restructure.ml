type summary = {
  step_name : string;
  source_saved : int;
  pl1_equiv_saved : int;
  entries_removed : int;
  user_entries_removed : int;
  note : string;
}

type step = {
  id : string;
  title : string;
  apply : Component.t list -> Component.t list * summary;
}

let kernel_source components =
  Inventory.total_source (Inventory.kernel components)

let kernel_pl1_equiv components =
  Inventory.total_pl1_equivalent (Inventory.kernel components)

(* Replace the component named [name] using [f]; [f] returns the
   replacement components (possibly several, possibly none). *)
let replace components name f =
  let found = ref false in
  let result =
    List.concat_map
      (fun comp ->
        if comp.Component.name = name then begin
          found := true;
          f comp
        end
        else [ comp ])
      components
  in
  if not !found then invalid_arg ("Restructure: no component named " ^ name);
  result

let summarize step_name note before after =
  { step_name;
    source_saved = kernel_source before - kernel_source after;
    pl1_equiv_saved = kernel_pl1_equiv before - kernel_pl1_equiv after;
    entries_removed =
      Inventory.total_entries (Inventory.kernel before)
      - Inventory.total_entries (Inventory.kernel after);
    user_entries_removed =
      Inventory.total_user_entries (Inventory.kernel before)
      - Inventory.total_user_entries (Inventory.kernel after);
    note }

let extract_linker =
  { id = "linker";
    title = "Remove dynamic linker from the kernel (Janson, 1974)";
    apply =
      (fun components ->
        let after =
          replace components "dynamic_linker" (fun linker ->
              [ { linker with Component.region = Component.User_domain } ])
        in
        ( after,
          summarize "Linker"
            "moved wholesale to the user domain; runs slightly slower there"
            components after )) }

let extract_name_manager =
  { id = "name_manager";
    title = "Remove name management from the kernel (Bratt, 1975)";
    apply =
      (fun components ->
        let after =
          replace components "name_manager" (fun _ ->
              [ { Component.name = "directory_search_primitive";
                  pl1_lines = 100; asm_lines = 0; entry_points = 2;
                  user_entry_points = 2; region = Component.Ring_zero };
                { Component.name = "name_manager_user"; pl1_lines = 275;
                  asm_lines = 0; entry_points = 6; user_entry_points = 0;
                  region = Component.User_domain } ])
        in
        ( after,
          summarize "Name Manager"
            "user-ring rewrite is a quarter the size of the in-kernel \
             algorithm"
            components after )) }

let split_answering_service =
  { id = "answering_service";
    title = "Split the Answering Service (Montgomery, 1976)";
    apply =
      (fun components ->
        let after =
          replace components "answering_service" (fun _ ->
              [ { Component.name = "authentication_core"; pl1_lines = 900;
                  asm_lines = 0; entry_points = 8; user_entry_points = 4;
                  region = Component.Trusted_process };
                { Component.name = "login_server"; pl1_lines = 9_100;
                  asm_lines = 0; entry_points = 112; user_entry_points = 26;
                  region = Component.User_domain } ])
        in
        ( after,
          summarize "Answering Service"
            "fewer than 1,000 of 10,000 lines need kernel trust" components
            after )) }

let extract_network =
  { id = "network";
    title = "Remove network control from the kernel (Ciccarelli, 1977)";
    apply =
      (fun components ->
        let after =
          replace components "network_control" (fun _ ->
              [ { Component.name = "generic_demultiplexer"; pl1_lines = 900;
                  asm_lines = 0; entry_points = 12; user_entry_points = 4;
                  region = Component.Ring_zero };
                { Component.name = "network_protocols_user";
                  pl1_lines = 6_100; asm_lines = 0; entry_points = 148;
                  user_entry_points = 0; region = Component.User_domain } ])
        in
        ( after,
          summarize "Network I/O"
            "network-independent demultiplexer stays; kernel bulk now grows \
             only slightly per attached network"
            components after )) }

let extract_initialization =
  { id = "initialization";
    title = "Initialize in a previous incarnation (Luniewski, 1977)";
    apply =
      (fun components ->
        let after =
          replace components "initialization" (fun init ->
              [ { init with Component.region = Component.User_domain } ])
        in
        ( after,
          summarize "Initialization"
            "performed in a user process environment of a previous system \
             incarnation"
            components after )) }

let recode_assembly =
  { id = "recode_assembly";
    title = "Exclusive use of PL/I";
    apply =
      (fun components ->
        let after =
          List.map
            (fun comp ->
              if Component.in_kernel comp then Component.recode_in_pl1 comp
              else comp)
            components
        in
        ( after,
          summarize "Exclusive use of PL/I"
            "source shrinks ~2.3x; generated instructions grow ~2x (the \
             memory-manager slowdown)"
            components after )) }

let all_steps =
  [ extract_linker; extract_name_manager; split_answering_service;
    extract_network; extract_initialization; recode_assembly ]

let apply_all components =
  List.fold_left
    (fun (components, summaries) step ->
      let components', summary = step.apply components in
      (components', summary :: summaries))
    (components, []) all_steps
  |> fun (components, summaries) -> (components, List.rev summaries)

let specialize_file_store_estimate components =
  let remaining = kernel_pl1_equiv components in
  (remaining * 15 / 100, remaining * 25 / 100)

let user_domain_algorithm_sizes =
  [ ("name management (Bratt)", 1_100, 275) ]
