(** The restructuring projects of the paper, as operations on the
    component inventory.

    Each step transforms the component list (moving code to the user
    domain, shrinking what remains, recoding assembly) and reports what
    it saved.  Applying all six steps regenerates the paper's size
    table. *)

type summary = {
  step_name : string;
  source_saved : int;       (** kernel source lines removed *)
  pl1_equiv_saved : int;    (** same, in PL/I-equivalent lines *)
  entries_removed : int;    (** kernel entry points removed *)
  user_entries_removed : int;
  note : string;
}

type step = {
  id : string;
  title : string;
  apply : Component.t list -> Component.t list * summary;
}

val extract_linker : step
(** Janson 1974: dynamic linking moved wholly to the user domain. *)

val extract_name_manager : step
(** Bratt 1975: pathname expansion outside the kernel over a
    single-directory search primitive; the extracted algorithm is a
    quarter of the in-kernel version's size. *)

val split_answering_service : step
(** Montgomery 1976: of 10,000 lines, fewer than 1,000 (an
    authentication core) need stay in the kernel. *)

val extract_network : step
(** Ciccarelli 1977: per-network handlers out; a network-independent
    demultiplexer of under 1,000 lines remains. *)

val extract_initialization : step
(** Luniewski 1977: initialization performed in a user-process
    environment of a previous system incarnation. *)

val recode_assembly : step
(** Recode all remaining kernel assembly in PL/I. *)

val all_steps : step list
(** In the order of the paper's table. *)

val apply_all : Component.t list -> Component.t list * summary list

val specialize_file_store_estimate : Component.t list -> int * int
(** (low, high) further PL/I-equivalent saving from specialising to a
    network-connected file store: 15-25% of the remaining kernel. *)

val user_domain_algorithm_sizes : (string * int * int) list
(** (project, in-kernel size, out-of-kernel size) for the projects where
    extraction also shrank the algorithm itself. *)
