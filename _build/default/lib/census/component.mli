(** One component of the Multics supervisor, as counted by the paper's
    size censuses.

    Sizes are in source lines, split by implementation language; the
    paper's preferred measure — PL/I-equivalent lines — is derived by
    dividing assembly lines by the recoding factor ("the number of
    source lines typically shrinks by slightly more than a factor of
    two" when assembly is recoded in PL/I). *)

type region =
  | Ring_zero          (** inside the innermost protection boundary *)
  | Outer_ring         (** other supervisor rings *)
  | Trusted_process    (** e.g. the Answering Service *)
  | User_domain        (** outside the kernel entirely *)

type t = {
  name : string;
  pl1_lines : int;
  asm_lines : int;
  entry_points : int;
  user_entry_points : int;
  region : region;
}

val asm_recoding_factor : float
(** Source-line shrink factor for assembly -> PL/I (2.27). *)

val instruction_growth_factor : float
(** Generated machine instructions grow by about this factor when PL/I
    replaces assembly (2.0) — the performance cost of recoding. *)

val source_lines : t -> int
(** [pl1_lines + asm_lines]. *)

val pl1_equivalent : t -> int
(** PL/I-equivalent lines: PL/I source plus assembly source divided by
    the recoding factor — the paper's preferred kernel-size measure. *)

val in_kernel : t -> bool
(** True unless the component lives in the user domain. *)

val recode_in_pl1 : t -> t
(** Replace assembly by PL/I at the recoding factor. *)

val pp : Format.formatter -> t -> unit
