type region = Ring_zero | Outer_ring | Trusted_process | User_domain

type t = {
  name : string;
  pl1_lines : int;
  asm_lines : int;
  entry_points : int;
  user_entry_points : int;
  region : region;
}

let asm_recoding_factor = 2.27
let instruction_growth_factor = 2.0

let source_lines t = t.pl1_lines + t.asm_lines

let pl1_equivalent t =
  t.pl1_lines
  + int_of_float (Float.round (float_of_int t.asm_lines /. asm_recoding_factor))

let in_kernel t = t.region <> User_domain

let recode_in_pl1 t =
  { t with
    pl1_lines =
      t.pl1_lines
      + int_of_float
          (Float.round (float_of_int t.asm_lines /. asm_recoding_factor));
    asm_lines = 0 }

let region_to_string = function
  | Ring_zero -> "ring-0"
  | Outer_ring -> "outer-ring"
  | Trusted_process -> "trusted-process"
  | User_domain -> "user-domain"

let pp ppf t =
  Format.fprintf ppf "%-24s %6d pl1 %6d asm  %4d entries (%3d user) [%s]"
    t.name t.pl1_lines t.asm_lines t.entry_points t.user_entry_points
    (region_to_string t.region)
