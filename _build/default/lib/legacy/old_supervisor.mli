(** The legacy supervisor, assembled: one-level process control plus a
    facade comparable to {!Multics_kernel.Kernel}.

    Process control is single-level: every process competes directly
    for the real processors, and its state lives in a pageable segment,
    so a context switch can itself take page faults — the interpreter
    dependency loop the two-level design removes.  Runs on the legacy
    hardware configuration (no lock bit, no quota-fault bit, single
    descriptor base register). *)

module K = Multics_kernel

type config = {
  hw : Multics_hw.Hw_config.t;
  disk_packs : int;
  records_per_pack : int;
  reserved_frames : int;  (** top of memory for tables and descriptors *)
  ast_slots : int;
  pt_words : int;
  max_processes : int;
  quantum : int;  (** actions per scheduling quantum *)
  root_quota : int;
}

val default_config : config
val small_config : config

type t

val boot : config -> t
val state : t -> Old_types.state

val mkdir : t -> path:string -> acl:K.Acl.t -> unit
val create_file : t -> path:string -> acl:K.Acl.t -> unit
val set_quota : t -> path:string -> limit:int -> unit
val quota_usage : t -> path:string -> (int * int) option

val spawn :
  t -> ?principal:K.Acl.principal -> pname:string -> K.Workload.program -> int

val run : ?until:int -> ?max_events:int -> t -> unit
val run_to_completion : ?max_events:int -> t -> bool
val all_done : t -> bool
val now : t -> int
val proc_state : t -> int -> Old_types.proc_state

val observed_graph : t -> Multics_depgraph.Graph.t
(** The dependency edges actually exercised, under the Figure 2/3
    module names — compare with [Figures.fig2_superficial] to rediscover
    the paper's loops. *)

val stats : t -> Old_types.stats
val meter : t -> K.Meter.t
val pp_report : Format.formatter -> t -> unit
