module K = Multics_kernel
module Hw = Multics_hw

let page_control = "page_control"
let segment_control = "segment_control"
let directory_control = "directory_control"
let address_space_control = "address_space_control"
let process_control = "process_control"
let disk_volume_control = "disk_volume_control"

type ast_entry = {
  oe_index : int;
  mutable oe_uid : int;
  mutable oe_pack : int;
  mutable oe_vtoc : int;
  mutable oe_parent : int;
  mutable oe_is_dir : bool;
  mutable oe_quota_limit : int;
  mutable oe_quota_used : int;
  mutable oe_active_inferiors : int;
  mutable oe_live : bool;
  oe_pt_base : Hw.Addr.abs;
}

type dentry = {
  od_name : string;
  od_uid : int;
  od_is_dir : bool;
  mutable od_pack : int;
  mutable od_vtoc : int;
  od_acl : K.Acl.t;
}

type dir = {
  odir_uid : int;
  odir_parent : int;
  mutable odir_is_quota : bool;
  odir_entries : (string, dentry) Hashtbl.t;
  mutable odir_acl : K.Acl.t;
  odir_depth : int;
}

type frame_entry = {
  mutable fr_ptw : Hw.Addr.abs;
  mutable fr_record : int;
  mutable fr_ast : int;
  mutable fr_pageno : int;
}

type proc_state = O_ready | O_running | O_waiting | O_done | O_failed of string

type oproc = {
  op_pid : int;
  op_principal : K.Acl.principal;
  op_program : K.Workload.program;
  mutable op_pc : int;
  op_regs : int array;
  mutable op_state : proc_state;
  mutable op_quantum : int;
  op_vcpu : Hw.Cpu.t;
  op_dseg_base : Hw.Addr.abs;
  op_kst : (int, int) Hashtbl.t;
  op_kst_rev : (int, int) Hashtbl.t;
  mutable op_next_segno : int;
  op_state_uid : int;
  mutable op_cpu_ns : int;
  mutable op_faults : int;
}

type stats = {
  mutable st_faults : int;
  mutable st_page_reads : int;
  mutable st_page_writes : int;
  mutable st_evictions : int;
  mutable st_zero_reclaims : int;
  mutable st_retranslations : int;
  mutable st_lock_contentions : int;
  mutable st_quota_search_levels : int;
  mutable st_quota_searches : int;
  mutable st_full_packs : int;
  mutable st_relocations : int;
  mutable st_resolutions : int;
  mutable st_switches : int;
  mutable st_loads : int;
  mutable st_completed : int;
  mutable st_failed : int;
  mutable st_denials : int;
  mutable st_deactivation_blocked : int;
}

type state = {
  machine : Hw.Machine.t;
  meter : K.Meter.t;
  tracer : K.Tracer.t;
  ast : ast_entry array;
  pt_words : int;
  frames : frame_entry array;
  mutable free_frames : int list;
  mutable n_free : int;
  mutable clock_hand : int;
  mutable fault_intervals : int list;
  dirs : (int, dir) Hashtbl.t;
  mutable root_uid : int;
  mutable next_uid : int;
  procs : (int, oproc) Hashtbl.t;
  ready : int Queue.t;
  mutable cpu_busy : bool array;
  mutable next_pid : int;
  quantum : int;
  dseg_area_base : Hw.Addr.abs;
  stats : stats;
}

let fresh_uid t =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  uid

let charge_asm t ~manager ns = K.Meter.charge t.meter ~manager K.Cost.Asm ns
let charge_pl1 t ~manager ns = K.Meter.charge t.meter ~manager K.Cost.Pl1 ns
let share t ~from ~to_ = K.Tracer.call t.tracer ~from ~to_
