lib/legacy/old_storage.mli: Multics_hw Multics_kernel Multics_sync Old_types
