lib/legacy/old_directory.mli: Multics_kernel Old_types
