lib/legacy/old_storage.ml: Array Hashtbl List Multics_hw Multics_kernel Multics_sync Old_types
