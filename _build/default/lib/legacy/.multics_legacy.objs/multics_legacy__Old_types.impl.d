lib/legacy/old_types.ml: Hashtbl Multics_hw Multics_kernel Queue
