lib/legacy/old_directory.ml: Array Hashtbl List Multics_hw Multics_kernel Old_storage Old_types String
