lib/legacy/old_types.mli: Hashtbl Multics_hw Multics_kernel Queue
