lib/legacy/old_supervisor.ml: Array Format Hashtbl List Multics_depgraph Multics_hw Multics_kernel Multics_sync Old_directory Old_storage Old_types Printf Queue String
