lib/legacy/old_supervisor.mli: Format Multics_depgraph Multics_hw Multics_kernel Old_types
