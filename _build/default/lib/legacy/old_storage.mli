(** Legacy storage control: disk volume, segment and page control.

    One body of code with the old structure: page control walks segment
    control's active segment table to find quota cells (the dynamic
    upward search), interpretively retranslates after a raced fault
    (there is no descriptor lock bit), evicts at fault time, and — on a
    full pack — has segment control find and directly update the
    directory entry.  Hot paths charge at assembly-language cost. *)

module K = Multics_kernel

val create_segment :
  Old_types.state -> dir_uid:int -> name:string -> is_dir:bool ->
  acl:K.Acl.t -> (Old_types.dentry, [ `No_access | `Name_duplicated ]) result
(** Make the VTOC entry and the directory entry (directory control and
    volume control share this path in the old supervisor). *)

val locate : Old_types.state -> uid:int -> (int * int) option
(** Find a segment's (pack, VTOC index) by scanning the in-kernel
    directory records — the shared-data walk the old design performs. *)

val activate :
  Old_types.state -> uid:int -> (int, [ `No_slot | `Gone ]) result
(** Bring a segment into the AST, activating its superior directories
    first and linking parent pointers; directories with active
    inferiors cannot be deactivated to make room. *)

val find_active : Old_types.state -> uid:int -> int option

val connect :
  Old_types.state -> Old_types.oproc -> segno:int -> ast:int ->
  mode:K.Acl.mode -> unit
(** Plant the SDW in the process's descriptor segment. *)

type fault_outcome =
  | O_retry
  | O_wait of Multics_sync.Eventcount.t * int
  | O_error of string

val service_page_fault :
  Old_types.state -> Old_types.oproc -> ptw_abs:Multics_hw.Addr.abs ->
  fault_outcome
(** The legacy missing-page path, including the grow-with-quota-search
    case (the hardware cannot distinguish it). *)

val kernel_touch_sync :
  Old_types.state -> uid:int -> pageno:int -> write:bool ->
  (unit, string) result
(** Synchronous kernel access to a page (process-state segments during
    loading); charges any I/O latency inline. *)

val deactivate_for_test : Old_types.state -> ast:int -> bool
(** Try to deactivate one AST entry (tests exercise the hierarchy
    constraint); [false] if the entry is protected by active
    inferiors. *)
