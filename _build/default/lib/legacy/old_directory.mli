(** Legacy directory control: pathname resolution buried in ring 0.

    The whole tree walk happens inside the supervisor behind one gate;
    the caller gets one of exactly two answers, "found" or "no access",
    and access is judged only at the target (paper pp. 27-28).  The
    walk carries the complexity cost of the general in-kernel algorithm
    — the one Bratt found to be four times the size of its user-ring
    replacement. *)

module K = Multics_kernel

val resolve :
  Old_types.state -> principal:K.Acl.principal -> path:string ->
  (Old_types.dentry * K.Acl.mode, [ `No_access ]) result
(** Full in-kernel resolution.  [`No_access] covers nonexistent paths,
    inaccessible targets, and everything between. *)

val create_entry :
  Old_types.state -> principal:K.Acl.principal -> dir_path:string ->
  name:string -> is_dir:bool -> acl:K.Acl.t ->
  (Old_types.dentry, [ `No_access | `Name_duplicated ]) result

val delete_entry :
  Old_types.state -> principal:K.Acl.principal -> path:string ->
  (unit, [ `No_access | `Not_empty ]) result

val set_quota :
  Old_types.state -> principal:K.Acl.principal -> path:string -> limit:int ->
  (unit, [ `No_access ]) result
(** The OLD semantics: any directory may be designated a quota
    repository at any time, children or not — the dynamism that forces
    the upward search and the AST shape constraint. *)

val list_names :
  Old_types.state -> principal:K.Acl.principal -> path:string ->
  (string list, [ `No_access ]) result

val quota_usage : Old_types.state -> path:string -> (int * int) option
