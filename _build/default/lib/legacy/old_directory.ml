module K = Multics_kernel
module Hw = Multics_hw
open Old_types

let components path =
  String.split_on_char '>' path |> List.filter (fun c -> c <> "")

(* The in-kernel algorithm is the big one: it must handle every
   combination of inaccessible intervening directories without leaking
   anything through error behaviour, so each component costs many times
   the simple single-directory search (Bratt measured the extracted
   rewrite at a quarter the size, and the extraction made resolution
   *faster* despite the gate crossings). *)
let component_cost = 12 * K.Cost.directory_entry_op

let walk t path =
  let rec go dir = function
    | [] -> Some (`Dir dir)
    | [ leaf ] -> (
        charge_pl1 t ~manager:directory_control component_cost;
        match Hashtbl.find_opt dir.odir_entries leaf with
        | Some de -> Some (`Entry (dir, de))
        | None -> None)
    | comp :: rest -> (
        charge_pl1 t ~manager:directory_control component_cost;
        match Hashtbl.find_opt dir.odir_entries comp with
        | Some de when de.od_is_dir -> (
            match Hashtbl.find_opt t.dirs de.od_uid with
            | Some child -> go child rest
            | None -> None)
        | Some _ | None -> None)
  in
  match Hashtbl.find_opt t.dirs t.root_uid with
  | None -> None
  | Some root -> go root (components path)

let resolve t ~principal ~path =
  t.stats.st_resolutions <- t.stats.st_resolutions + 1;
  charge_pl1 t ~manager:directory_control K.Cost.acl_check;
  match walk t path with
  | None | Some (`Dir _) ->
      t.stats.st_denials <- t.stats.st_denials + 1;
      Error `No_access
  | Some (`Entry (_dir, de)) ->
      (* Access is determined entirely by the target's ACL. *)
      let mode = K.Acl.check de.od_acl principal in
      if mode = K.Acl.no_access then begin
        t.stats.st_denials <- t.stats.st_denials + 1;
        Error `No_access
      end
      else Ok (de, mode)

let dir_of_path t path =
  match components path with
  | [] -> Hashtbl.find_opt t.dirs t.root_uid
  | _ -> (
      match walk t path with
      | Some (`Entry (_, de)) when de.od_is_dir -> Hashtbl.find_opt t.dirs de.od_uid
      | Some (`Dir dir) -> Some dir
      | _ -> None)

let create_entry t ~principal ~dir_path ~name ~is_dir ~acl =
  match dir_of_path t dir_path with
  | None -> Error `No_access
  | Some dir ->
      charge_pl1 t ~manager:directory_control K.Cost.acl_check;
      if not (K.Acl.permits dir.odir_acl principal `Write) then
        Error `No_access
      else (
        match Old_storage.create_segment t ~dir_uid:dir.odir_uid ~name ~is_dir
                ~acl
        with
        | Ok de -> Ok de
        | Error `Name_duplicated -> Error `Name_duplicated
        | Error `No_access -> Error `No_access)

let delete_entry t ~principal ~path =
  match walk t path with
  | None | Some (`Dir _) -> Error `No_access
  | Some (`Entry (dir, de)) ->
      charge_pl1 t ~manager:directory_control K.Cost.acl_check;
      if not (K.Acl.permits dir.odir_acl principal `Write) then Error `No_access
      else if
        de.od_is_dir
        && (match Hashtbl.find_opt t.dirs de.od_uid with
           | Some child -> Hashtbl.length child.odir_entries > 0
           | None -> false)
      then Error `Not_empty
      else begin
        (* Deactivate if active, free records and the VTOC entry. *)
        (match Old_storage.find_active t ~uid:de.od_uid with
        | Some ast -> ignore (Old_storage.deactivate_for_test t ~ast)
        | None -> ());
        (try
           let vtoc =
             Hw.Disk.vtoc_entry t.machine.Hw.Machine.disk ~pack:de.od_pack
               ~index:de.od_vtoc
           in
           Array.iter
             (fun handle ->
               if handle >= 0 then
                 Hw.Disk.free_record t.machine.Hw.Machine.disk
                   ~pack:(Hw.Disk.pack_of_handle handle)
                   ~record:(Hw.Disk.record_of_handle handle))
             vtoc.Hw.Disk.file_map;
           Hw.Disk.delete_vtoc_entry t.machine.Hw.Machine.disk
             ~pack:de.od_pack ~index:de.od_vtoc
         with Not_found -> ());
        Hashtbl.remove dir.odir_entries de.od_name;
        Hashtbl.remove t.dirs de.od_uid;
        charge_pl1 t ~manager:directory_control K.Cost.directory_entry_op;
        Ok ()
      end

let set_quota t ~principal ~path ~limit =
  match walk t path with
  | None | Some (`Dir _) -> Error `No_access
  | Some (`Entry (dir, de)) -> (
      charge_pl1 t ~manager:directory_control K.Cost.quota_check;
      if not (K.Acl.permits dir.odir_acl principal `Write) then Error `No_access
      else
        match Hashtbl.find_opt t.dirs de.od_uid with
        | None -> Error `No_access
        | Some child ->
            (* Dynamic designation: allowed at ANY time. *)
            child.odir_is_quota <- true;
            (try
               let vtoc =
                 Hw.Disk.vtoc_entry t.machine.Hw.Machine.disk ~pack:de.od_pack
                   ~index:de.od_vtoc
               in
               let used =
                 match vtoc.Hw.Disk.quota with
                 | Some q -> q.Hw.Disk.used
                 | None -> 0
               in
               vtoc.Hw.Disk.quota <- Some { Hw.Disk.limit; used }
             with Not_found -> ());
            (* If active, refresh the AST copy that page control walks. *)
            (match Old_storage.find_active t ~uid:de.od_uid with
            | Some ast ->
                t.ast.(ast).oe_quota_limit <- limit
            | None -> ());
            Ok ())

let list_names t ~principal ~path =
  match dir_of_path t path with
  | None -> Error `No_access
  | Some dir ->
      charge_pl1 t ~manager:directory_control K.Cost.acl_check;
      if not (K.Acl.permits dir.odir_acl principal `Read) then Error `No_access
      else begin
        charge_pl1 t ~manager:directory_control
          (K.Cost.directory_entry_op * (1 + Hashtbl.length dir.odir_entries));
        Ok
          (Hashtbl.fold (fun name _ acc -> name :: acc) dir.odir_entries []
          |> List.sort compare)
      end

let quota_usage t ~path =
  match walk t path with
  | None | Some (`Dir _) -> None
  | Some (`Entry (_, de)) -> (
      match Old_storage.find_active t ~uid:de.od_uid with
      | Some ast when t.ast.(ast).oe_quota_limit >= 0 ->
          Some (t.ast.(ast).oe_quota_used, t.ast.(ast).oe_quota_limit)
      | _ -> (
          try
            let vtoc =
              Hw.Disk.vtoc_entry t.machine.Hw.Machine.disk ~pack:de.od_pack
                ~index:de.od_vtoc
            in
            match vtoc.Hw.Disk.quota with
            | Some q -> Some (q.Hw.Disk.used, q.Hw.Disk.limit)
            | None -> None
          with Not_found -> None))
