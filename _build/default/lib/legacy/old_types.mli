(** Shared data bases of the legacy Multics supervisor (Figures 2/3).

    Unlike Kernel/Multics, where each manager owns its objects, the old
    supervisor keeps a handful of large, directly shared tables: the
    active segment table with parent links and in-entry quota, the
    in-kernel directory tree, the frame table and the process table.
    Every module reads and writes the others' tables — the implicit
    shared-data dependencies the paper catalogues.  The conformance
    bench compares the call/sharing edges observed here against the
    superficial structure of Figure 2 and finds exactly the paper's
    extra edges.

    The legacy supervisor reuses the cost model, meter, tracer, ACLs and
    workload definitions of [multics_kernel] — instruments, not kernel
    structure — and runs on the legacy hardware configuration (no
    descriptor lock bit, no quota-fault bit, single DBR). *)

module K = Multics_kernel

(* Module names as the figures draw them. *)
val page_control : string
val segment_control : string
val directory_control : string
val address_space_control : string
val process_control : string
val disk_volume_control : string

type ast_entry = {
  oe_index : int;
  mutable oe_uid : int;
  mutable oe_pack : int;
  mutable oe_vtoc : int;
  mutable oe_parent : int;  (** AST index of the superior directory; -1 none *)
  mutable oe_is_dir : bool;
  mutable oe_quota_limit : int;  (** quota directories only; -1 otherwise *)
  mutable oe_quota_used : int;
  mutable oe_active_inferiors : int;
  mutable oe_live : bool;
  oe_pt_base : Multics_hw.Addr.abs;
}

type dentry = {
  od_name : string;
  od_uid : int;
  od_is_dir : bool;
  mutable od_pack : int;
  mutable od_vtoc : int;
  od_acl : K.Acl.t;
}

type dir = {
  odir_uid : int;
  odir_parent : int;  (** uid; -1 for root *)
  mutable odir_is_quota : bool;
  odir_entries : (string, dentry) Hashtbl.t;
  mutable odir_acl : K.Acl.t;
  odir_depth : int;  (** levels below the root, for the quota search *)
}

type frame_entry = {
  mutable fr_ptw : Multics_hw.Addr.abs;  (** -1 when free *)
  mutable fr_record : int;  (** record handle; -1 none *)
  mutable fr_ast : int;  (** owning AST index, for quota/file-map updates *)
  mutable fr_pageno : int;
}

type proc_state = O_ready | O_running | O_waiting | O_done | O_failed of string

type oproc = {
  op_pid : int;
  op_principal : K.Acl.principal;
  op_program : K.Workload.program;
  mutable op_pc : int;
  op_regs : int array;
  mutable op_state : proc_state;
  mutable op_quantum : int;
  op_vcpu : Multics_hw.Cpu.t;
  op_dseg_base : Multics_hw.Addr.abs;
  op_kst : (int, int) Hashtbl.t;  (** segno -> uid *)
  op_kst_rev : (int, int) Hashtbl.t;  (** uid -> segno *)
  mutable op_next_segno : int;
  op_state_uid : int;  (** the pageable process-state segment *)
  mutable op_cpu_ns : int;
  mutable op_faults : int;
}

type stats = {
  mutable st_faults : int;
  mutable st_page_reads : int;
  mutable st_page_writes : int;
  mutable st_evictions : int;
  mutable st_zero_reclaims : int;
  mutable st_retranslations : int;
  mutable st_lock_contentions : int;
  mutable st_quota_search_levels : int;
  mutable st_quota_searches : int;
  mutable st_full_packs : int;
  mutable st_relocations : int;
  mutable st_resolutions : int;
  mutable st_switches : int;
  mutable st_loads : int;
  mutable st_completed : int;
  mutable st_failed : int;
  mutable st_denials : int;
  mutable st_deactivation_blocked : int;
      (** victim search skipped a directory because inferiors were
          active — the hierarchy-shape constraint *)
}

type state = {
  machine : Multics_hw.Machine.t;
  meter : K.Meter.t;
  tracer : K.Tracer.t;
  ast : ast_entry array;
  pt_words : int;
  frames : frame_entry array;
  mutable free_frames : int list;
  mutable n_free : int;
  mutable clock_hand : int;
  mutable fault_intervals : int list;
      (** simulated end-times of recent page-fault services; a fault
          starting inside one pays the retranslation *)
  dirs : (int, dir) Hashtbl.t;
  mutable root_uid : int;
  mutable next_uid : int;
  procs : (int, oproc) Hashtbl.t;
  ready : int Queue.t;
  mutable cpu_busy : bool array;
  mutable next_pid : int;
  quantum : int;
  dseg_area_base : Multics_hw.Addr.abs;
  stats : stats;
}

val fresh_uid : state -> int
val charge_asm : state -> manager:string -> int -> unit
(** The legacy supervisor's hot paths are assembly-coded: language
    factor 1.0. *)

val charge_pl1 : state -> manager:string -> int -> unit
val share : state -> from:string -> to_:string -> unit
(** Record a shared-data or call dependency edge. *)
