(** Rendering dependency graphs as text.

    [layered] reproduces the look of the paper's figures: one box per
    module, higher layers depending on lower ones, each edge annotated
    with its dependency kinds.  Graphs with cycles are rendered as an
    edge list with the offending strongly connected components called
    out — which is exactly the point of Figure 3. *)

val layered : Format.formatter -> Graph.t -> unit

val edge_list : Format.formatter -> Graph.t -> unit

val dot : Format.formatter -> Graph.t -> unit
(** Graphviz output; improper dependency kinds are drawn dashed/red. *)

val to_string : (Format.formatter -> Graph.t -> unit) -> Graph.t -> string
