(** Runtime dependency conformance.

    The kernel's managers declare their dependencies up front (the
    design); a recorder traces actual cross-manager calls as they happen
    (the implementation).  The audit compares the two: every observed
    call edge must be covered by a declared dependency, or the
    implementation has drifted from the auditable structure — the
    failure mode the paper's whole methodology exists to prevent. *)

type t

val create : declared:Graph.t -> t

val record_call : t -> from:string -> to_:string -> unit
(** Note an actual call from manager [from] into manager [to_].
    Self-calls are ignored. *)

val observed : t -> (string * string * int) list
(** Distinct observed edges with call counts, sorted. *)

type violation = { v_from : string; v_to : string; v_count : int }

val violations : t -> violation list
(** Observed edges not covered by any declared dependency. *)

val unexercised : t -> (string * string) list
(** Declared edges never observed (informational; map/program/address
    space/interpreter dependencies are structural and are not expected
    to appear as calls, so only [Component] and [Explicit_call]
    declarations are reported here). *)

val conforms : t -> bool
val report : Format.formatter -> t -> unit
