(** The paper's classification of intermodule dependencies.

    For a module M, the five proper kinds (paper pp. 10-11):
    - {e Component}: M's objects are represented by objects managed by
      the target module.
    - {e Map}: the mapping from M's object names to component names is
      stored in objects of the target module.
    - {e Program}: M's algorithms and temporary storage live in objects
      of the target module.
    - {e Address_space}: the address space in which M executes is an
      object of the target module.
    - {e Interpreter}: M's virtual processor is implemented by the
      target module.

    Two further kinds label dependencies found in systems "modularized
    and structured by different principles (or no principles at all!)":
    explicit procedure calls / message round-trips, and direct sharing
    of writable data.  The goal of redesign is their elimination. *)

type t =
  | Component
  | Map
  | Program
  | Address_space
  | Interpreter
  | Explicit_call
  | Shared_data

val all : t list
val proper : t -> bool
(** True for the five type-extension kinds, false for [Explicit_call]
    and [Shared_data]. *)

val to_string : t -> string
val short : t -> string
(** One- or two-letter tag used in rendered figures. *)

val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
