(* Module names follow the paper's figures. *)

let dvc = "disk_volume_control"
let fdc = "directory_control"
let asc = "address_space_control"
let sc = "segment_control"
let pc = "page_control"
let prc = "process_control"

let fig2_superficial () =
  let g = Graph.create ~name:"Figure 2: superficial dependency structure" () in
  let edge from to_ = Graph.add_edge g ~from ~to_ Dep_kind.Explicit_call in
  (* The nearly linear chain of the six large modules, top to bottom. *)
  edge dvc fdc;
  edge fdc asc;
  edge asc sc;
  edge sc pc;
  edge pc prc;
  (* The one obvious exception: the virtual-memory / processor-
     multiplexing loop.  Page control gives the processor away on a
     missing page; process control stores inactive process states in
     segments. *)
  Graph.add_edge g ~from:prc ~to_:sc Dep_kind.Explicit_call;
  g

let fig3_actual () =
  let g = Graph.create ~name:"Figure 3: actual dependency structure" () in
  let edge from to_ kind = Graph.add_edge g ~from ~to_ kind in
  (* Figure 2's edges. *)
  edge dvc fdc Dep_kind.Explicit_call;
  edge fdc asc Dep_kind.Explicit_call;
  edge asc sc Dep_kind.Explicit_call;
  edge sc pc Dep_kind.Explicit_call;
  edge pc prc Dep_kind.Explicit_call;
  edge prc sc Dep_kind.Explicit_call;
  (* (a) Missing pages: after capturing the global lock, page control
     interpretively retranslates the faulting virtual address, which
     requires knowing the format of — and trusting — the translation
     tables maintained by segment control and address space control. *)
  edge pc sc Dep_kind.Shared_data;
  edge pc asc Dep_kind.Shared_data;
  (* (b) Quota enforcement: page control locates the limit and count by
     walking the active segment table links segment control maintains,
     and segment control's deactivation policy is constrained by the
     hierarchy shape directory control defines. *)
  edge sc fdc Dep_kind.Shared_data;
  (* (c) Full disk packs: segment control reads an address space control
     data base to find the directory entry and updates it directly. *)
  edge sc asc Dep_kind.Shared_data;
  (* Modules depend on higher modules to contain their programs and
     maps and represent their address spaces: page control code is
     stored in segments; its address space comes from address space
     control. *)
  edge pc sc Dep_kind.Program;
  edge pc asc Dep_kind.Address_space;
  edge sc asc Dep_kind.Address_space;
  edge prc asc Dep_kind.Address_space;
  g

(* Figure 4 module names. *)
let csm = "core_segment_manager"
let vpm = "virtual_processor_manager"
let dpm = "disk_pack_manager"
let pfm = "page_frame_manager"
let qcm = "quota_cell_manager"
let asm = "active_segment_manager"
let sm = "segment_manager"
let ksm = "known_segment_manager"
let aspm = "address_space_manager"
let upm = "user_process_manager"
let ups = "user_process_scheduler"
let dm = "directory_manager"

let fig4_redesign () =
  let g = Graph.create ~name:"Figure 4: redesigned loop-free structure" () in
  let edge from to_ kind = Graph.add_edge g ~from ~to_ kind in
  (* Component and map dependencies, bottom-up. *)
  edge vpm csm Dep_kind.Map;               (* VP states live in core segments *)
  edge dpm csm Dep_kind.Map;               (* pack tables cached in core *)
  edge pfm csm Dep_kind.Map;               (* frame table in a core segment *)
  edge pfm dpm Dep_kind.Component;         (* page images are disk records *)
  edge qcm csm Dep_kind.Map;               (* quota cell cache in core *)
  edge qcm dpm Dep_kind.Component;         (* cells persist in VTOC entries *)
  edge asm csm Dep_kind.Map;               (* AST in a core segment *)
  edge asm pfm Dep_kind.Component;         (* active segments are page frames *)
  edge sm asm Dep_kind.Component;          (* a segment, when active, is an
                                              active segment *)
  edge sm dpm Dep_kind.Component;          (* and otherwise disk records *)
  edge sm qcm Dep_kind.Component;          (* growth consumes quota cells *)
  edge ksm sm Dep_kind.Component;          (* known segments name segments *)
  edge ksm sm Dep_kind.Map;                (* KST pages live in segments *)
  edge aspm sm Dep_kind.Component;         (* address spaces connect segments *)
  edge aspm csm Dep_kind.Map;              (* system tables in core segments *)
  edge upm sm Dep_kind.Component;          (* user process states in segments *)
  edge upm sm Dep_kind.Map;
  edge ups upm Dep_kind.Component;         (* the scheduler orders processes *)
  edge dm sm Dep_kind.Component;           (* directories stored in segments *)
  edge dm sm Dep_kind.Map;
  edge dm qcm Dep_kind.Component;          (* quota cells belong to quota dirs *)
  (* Blanket rules from the figure's caption: every module except the
     core segment manager depends on the core segment manager for its
     address space and programs, and on the virtual processor manager
     for its interpreter (the VPM itself runs on the bare processors). *)
  let everyone = [ dpm; pfm; qcm; asm; sm; ksm; aspm; upm; ups; dm ] in
  List.iter
    (fun m ->
      edge m csm Dep_kind.Address_space;
      edge m csm Dep_kind.Program;
      edge m vpm Dep_kind.Interpreter)
    everyone;
  edge vpm csm Dep_kind.Address_space;
  edge vpm csm Dep_kind.Program;
  g

let fig3_loop_explanations =
  [ ( "{segment_control, page_control, process_control}",
      "virtual memory is part of its own interpreter: page control hands \
       the processor to process control, whose process states live in \
       segments backed by page control" );
    ( "page_control -> segment_control & address_space_control",
      "interpretive retranslation after capturing the page-table lock \
       reads the translation tables of higher modules" );
    ( "segment_control -> directory_control",
      "quota limit/count kept in directory entries; AST deactivation \
       constrained to the hierarchy shape" );
    ( "segment_control -> address_space_control",
      "full-pack relocation finds and directly updates the directory \
       entry through an address-space-control data base" ) ]

let fig4_fixes =
  [ ( "interpreter loop (VM in its own interpreter)",
      "two-level process implementation: a fixed number of virtual \
       processors whose states stay in core segments" );
    ( "map/program/address-space loops",
      "core segments as explicit objects; dual descriptor base registers \
       give kernel modules a per-processor system address space" );
    ( "missing-page race (interpretive retranslation)",
      "hardware lock bit in the page descriptor plus a locked-descriptor \
       fault, wakeup-waiting switch and locked-address register" );
    ( "quota upward search",
      "quota cells as explicit objects, statically bound when a segment \
       is activated; quota directories may change status only when \
       childless" );
    ( "full-pack directory update",
      "upward signal to the directory manager carrying the new pack and \
       VTOC index, leaving no activation records below" ) ]
