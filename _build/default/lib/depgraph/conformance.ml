module PMap = Map.Make (struct
  type t = string * string

  let compare = compare
end)

type t = { declared : Graph.t; mutable calls : int PMap.t }

let create ~declared = { declared; calls = PMap.empty }

let record_call t ~from ~to_ =
  if from <> to_ then
    let count = match PMap.find_opt (from, to_) t.calls with
      | Some c -> c
      | None -> 0
    in
    t.calls <- PMap.add (from, to_) (count + 1) t.calls

let observed t =
  PMap.bindings t.calls |> List.map (fun ((f, to_), c) -> (f, to_, c))

type violation = { v_from : string; v_to : string; v_count : int }

let violations t =
  observed t
  |> List.filter_map (fun (from, to_, count) ->
         if Graph.mem_edge t.declared ~from ~to_ then None
         else Some { v_from = from; v_to = to_; v_count = count })

let unexercised t =
  Graph.edges t.declared
  |> List.filter_map (fun (from, to_, ks) ->
         let callable =
           List.exists
             (fun k -> k = Dep_kind.Component || k = Dep_kind.Explicit_call)
             ks
         in
         if callable && not (PMap.mem (from, to_) t.calls) then Some (from, to_)
         else None)

let conforms t = violations t = []

let report ppf t =
  let obs = observed t in
  Format.fprintf ppf "conformance: %d distinct call edges observed@."
    (List.length obs);
  match violations t with
  | [] ->
      Format.fprintf ppf "  all observed calls covered by declared dependencies@."
  | vs ->
      List.iter
        (fun v ->
          Format.fprintf ppf "  VIOLATION: %s -> %s (%d calls) undeclared@."
            v.v_from v.v_to v.v_count)
        vs
