type t =
  | Component
  | Map
  | Program
  | Address_space
  | Interpreter
  | Explicit_call
  | Shared_data

let all =
  [ Component; Map; Program; Address_space; Interpreter; Explicit_call;
    Shared_data ]

let proper = function
  | Component | Map | Program | Address_space | Interpreter -> true
  | Explicit_call | Shared_data -> false

let to_string = function
  | Component -> "component"
  | Map -> "map"
  | Program -> "program"
  | Address_space -> "address-space"
  | Interpreter -> "interpreter"
  | Explicit_call -> "explicit-call"
  | Shared_data -> "shared-data"

let short = function
  | Component -> "C"
  | Map -> "M"
  | Program -> "P"
  | Address_space -> "A"
  | Interpreter -> "I"
  | Explicit_call -> "X"
  | Shared_data -> "S"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let compare = Stdlib.compare
