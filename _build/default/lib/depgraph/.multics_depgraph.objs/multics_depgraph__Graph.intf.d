lib/depgraph/graph.mli: Dep_kind
