lib/depgraph/graph.ml: Dep_kind Hashtbl List Map Printf Set String
