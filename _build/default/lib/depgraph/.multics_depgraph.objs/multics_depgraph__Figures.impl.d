lib/depgraph/figures.ml: Dep_kind Graph List
