lib/depgraph/render.ml: Dep_kind Format Graph List String
