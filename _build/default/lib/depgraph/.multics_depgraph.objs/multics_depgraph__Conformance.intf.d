lib/depgraph/conformance.mli: Format Graph
