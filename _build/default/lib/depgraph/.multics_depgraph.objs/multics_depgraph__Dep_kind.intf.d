lib/depgraph/dep_kind.mli: Format
