lib/depgraph/conformance.ml: Dep_kind Format Graph List Map
