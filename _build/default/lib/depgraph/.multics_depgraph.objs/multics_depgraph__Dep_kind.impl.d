lib/depgraph/dep_kind.ml: Format Stdlib
