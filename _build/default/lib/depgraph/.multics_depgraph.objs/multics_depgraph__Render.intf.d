lib/depgraph/render.mli: Format Graph
