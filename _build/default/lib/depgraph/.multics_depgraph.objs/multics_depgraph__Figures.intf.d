lib/depgraph/figures.mli: Graph
