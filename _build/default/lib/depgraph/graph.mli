(** Labelled dependency digraphs.

    Nodes are module names; an edge [m -> n] means "establishing the
    correct operation of [m] requires assuming the correct operation of
    [n]" and carries the set of dependency kinds that give rise to it. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

val add_node : t -> string -> unit
(** Idempotent. *)

val add_edge : t -> from:string -> to_:string -> Dep_kind.t -> unit
(** Adds both endpoints; accumulates kinds on repeated edges.
    Self-edges are rejected with [Invalid_argument] — a module trivially
    depends on itself and recording it would only pollute loop reports. *)

val nodes : t -> string list
(** Sorted. *)

val edges : t -> (string * string * Dep_kind.t list) list
(** Sorted by (from, to); kinds sorted. *)

val successors : t -> string -> (string * Dep_kind.t list) list
val mem_edge : t -> from:string -> to_:string -> bool
val kinds : t -> from:string -> to_:string -> Dep_kind.t list

val n_nodes : t -> int
val n_edges : t -> int

val sccs : t -> string list list
(** Strongly connected components (Tarjan), each sorted, in reverse
    topological order of the condensation; singletons included. *)

val cycles : t -> string list list
(** SCCs of size > 1, plus any singleton with a self-loop (none can
    exist here, so: the non-trivial SCCs).  Empty iff loop-free. *)

val is_loop_free : t -> bool

val layers : t -> string list list option
(** For a loop-free graph, nodes grouped by dependency depth: layer 0 =
    modules depending on nothing, layer k = modules whose longest
    dependency chain has length k.  [None] when the graph has cycles.
    This is the iterative-verification order the paper wants: each
    module can be verified assuming only lower layers. *)

val copy : t -> t
