let pp_kinds ppf ks =
  Format.pp_print_string ppf
    (String.concat "" (List.map Dep_kind.short ks))

let edge_list ppf g =
  List.iter
    (fun (from, to_, ks) ->
      Format.fprintf ppf "  %-28s --%a--> %s@." from pp_kinds ks to_)
    (Graph.edges g)

let layered ppf g =
  Format.fprintf ppf "%s: %d modules, %d dependencies@." (Graph.name g)
    (Graph.n_nodes g) (Graph.n_edges g);
  match Graph.layers g with
  | Some layers ->
      let n = List.length layers in
      List.iteri
        (fun i _ ->
          (* Print highest layer first, like the figures. *)
          let level = n - 1 - i in
          let layer = List.nth layers level in
          Format.fprintf ppf "  layer %d: %s@." level (String.concat ", " layer);
          List.iter
            (fun v ->
              List.iter
                (fun (w, ks) ->
                  Format.fprintf ppf "    %s --%a--> %s@." v pp_kinds ks w)
                (Graph.successors g v))
            layer)
        layers;
      Format.fprintf ppf "  loop-free: yes (verifiable bottom-up in %d steps)@." n
  | None ->
      Format.fprintf ppf "  loop-free: NO@.";
      List.iteri
        (fun i cycle ->
          Format.fprintf ppf "  dependency loop %d: {%s}@." (i + 1)
            (String.concat ", " cycle))
        (Graph.cycles g);
      edge_list ppf g

let dot ppf g =
  Format.fprintf ppf "digraph %S {@." (Graph.name g);
  Format.fprintf ppf "  rankdir=BT; node [shape=box];@.";
  List.iter (fun v -> Format.fprintf ppf "  %S;@." v) (Graph.nodes g);
  List.iter
    (fun (from, to_, ks) ->
      let improper = List.exists (fun k -> not (Dep_kind.proper k)) ks in
      Format.fprintf ppf "  %S -> %S [label=\"%a\"%s];@." from to_ pp_kinds ks
        (if improper then ", style=dashed, color=red" else ""))
    (Graph.edges g);
  Format.fprintf ppf "}@."

let to_string render g = Format.asprintf "%a" render g
