(** The dependency structures of the paper's Figures 2, 3 and 4.

    Figure 2: the superficial view — six large modules in a nearly
    linear structure, with the one obvious loop between the virtual
    memory mechanism and processor multiplexing.

    Figure 3: the actual structure, once the quota, retranslation,
    full-pack and program/map/address-space dependencies the paper
    catalogues are taken into account.

    Figure 4: Janson and Reed's redesign — object managers with the
    five proper dependency kinds only, loop-free. *)

val fig2_superficial : unit -> Graph.t

val fig3_actual : unit -> Graph.t

val fig4_redesign : unit -> Graph.t

val fig3_loop_explanations : (string * string) list
(** (loop description, paper mechanism that causes it) pairs, for the
    bench report. *)

val fig4_fixes : (string * string) list
(** (problem, redesign mechanism that removes it) pairs. *)
