module SMap = Map.Make (String)

module KSet = Set.Make (Dep_kind)

type t = {
  g_name : string;
  mutable adj : KSet.t SMap.t SMap.t;  (* from -> to -> kinds *)
}

let create ?(name = "deps") () = { g_name = name; adj = SMap.empty }
let name t = t.g_name

let add_node t node =
  if not (SMap.mem node t.adj) then t.adj <- SMap.add node SMap.empty t.adj

let add_edge t ~from ~to_ kind =
  if from = to_ then
    invalid_arg (Printf.sprintf "Graph.add_edge: self-edge on %s" from);
  add_node t from;
  add_node t to_;
  let out = SMap.find from t.adj in
  let kinds =
    match SMap.find_opt to_ out with
    | Some ks -> KSet.add kind ks
    | None -> KSet.singleton kind
  in
  t.adj <- SMap.add from (SMap.add to_ kinds out) t.adj

let nodes t = SMap.bindings t.adj |> List.map fst

let edges t =
  SMap.bindings t.adj
  |> List.concat_map (fun (from, out) ->
         SMap.bindings out
         |> List.map (fun (to_, ks) -> (from, to_, KSet.elements ks)))

let successors t node =
  match SMap.find_opt node t.adj with
  | None -> []
  | Some out -> SMap.bindings out |> List.map (fun (n, ks) -> (n, KSet.elements ks))

let mem_edge t ~from ~to_ =
  match SMap.find_opt from t.adj with
  | None -> false
  | Some out -> SMap.mem to_ out

let kinds t ~from ~to_ =
  match SMap.find_opt from t.adj with
  | None -> []
  | Some out -> (
      match SMap.find_opt to_ out with
      | None -> []
      | Some ks -> KSet.elements ks)

let n_nodes t = SMap.cardinal t.adj
let n_edges t = SMap.fold (fun _ out acc -> acc + SMap.cardinal out) t.adj 0

(* Tarjan's strongly connected components. *)
let sccs t =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun (w, _) ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors t v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := List.sort compare (pop []) :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) (nodes t);
  List.rev !components

let cycles t = List.filter (fun c -> List.length c > 1) (sccs t)
let is_loop_free t = cycles t = []

let layers t =
  if not (is_loop_free t) then None
  else begin
    (* Depth of a node = longest chain of dependencies below it. *)
    let depth = Hashtbl.create 16 in
    let rec compute v =
      match Hashtbl.find_opt depth v with
      | Some d -> d
      | None ->
          let d =
            match successors t v with
            | [] -> 0
            | succs ->
                1 + List.fold_left (fun acc (w, _) -> max acc (compute w)) 0 succs
          in
          Hashtbl.replace depth v d;
          d
    in
    let max_depth = List.fold_left (fun acc v -> max acc (compute v)) 0 (nodes t) in
    let layer d = List.filter (fun v -> Hashtbl.find depth v = d) (nodes t) in
    Some (List.init (max_depth + 1) layer)
  end

let copy t = { g_name = t.g_name; adj = t.adj }
