let page_size = 1024
let max_pages_per_segment = 256
let max_segments = 512

type virt = { segno : int; wordno : int }
type abs = int

let virt ~segno ~wordno =
  assert (segno >= 0 && segno < max_segments);
  assert (wordno >= 0 && wordno < page_size * max_pages_per_segment);
  { segno; wordno }

let pageno v = v.wordno / page_size
let offset v = v.wordno mod page_size

let of_page ~segno ~pageno ~offset =
  assert (pageno >= 0 && pageno < max_pages_per_segment);
  assert (offset >= 0 && offset < page_size);
  virt ~segno ~wordno:((pageno * page_size) + offset)

let frame_base n = n * page_size
let pp_virt ppf v = Format.fprintf ppf "%d|%o" v.segno v.wordno
let pp_abs ppf a = Format.fprintf ppf "@%08o" a
