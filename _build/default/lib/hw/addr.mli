(** Virtual and absolute addresses.

    A virtual address names a word within a segment: (segment number,
    word number).  The word number splits into a page number and an
    offset within the page.  Absolute addresses index physical memory
    directly. *)

val page_size : int
(** Words per page (1024). *)

val max_pages_per_segment : int
(** Pages per segment (256), so segments hold up to 256K words. *)

val max_segments : int
(** Segment numbers per address space (512). *)

type virt = { segno : int; wordno : int }
(** A virtual address. *)

type abs = int
(** An absolute (physical) word address. *)

val virt : segno:int -> wordno:int -> virt
(** Smart constructor; checks ranges. *)

val pageno : virt -> int
(** Page number of the word within its segment. *)

val offset : virt -> int
(** Offset of the word within its page. *)

val of_page : segno:int -> pageno:int -> offset:int -> virt

val frame_base : int -> abs
(** Absolute address of the first word of frame [n]. *)

val pp_virt : Format.formatter -> virt -> unit
val pp_abs : Format.formatter -> abs -> unit
