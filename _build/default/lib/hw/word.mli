(** 36-bit machine words.

    The simulated machine is word-addressed, like the Honeywell 6180 that
    ran Multics.  Words are represented as native OCaml [int]s masked to
    36 bits; all arithmetic helpers here preserve that invariant. *)

type t = int

val width : int
(** Number of bits in a word (36). *)

val mask : int
(** [2^width - 1]. *)

val zero : t

val of_int : int -> t
(** Truncate a native integer to 36 bits. *)

val to_int : t -> int

val is_zero : t -> bool

val add : t -> t -> t
(** Modular 36-bit addition. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

val extract : t -> pos:int -> len:int -> int
(** [extract w ~pos ~len] reads the [len]-bit field starting at bit
    [pos] (bit 0 is least significant). *)

val insert : t -> pos:int -> len:int -> int -> t
(** [insert w ~pos ~len v] writes [v] (truncated to [len] bits) into the
    field at [pos] and returns the new word. *)

val bit : t -> int -> bool
val set_bit : t -> int -> bool -> t

val pp : Format.formatter -> t -> unit
(** Octal rendering, the Multics convention. *)
