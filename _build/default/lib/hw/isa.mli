(** A minimal instruction set executed out of simulated segments.

    The paper's dependency analysis treats "programs" as objects: a
    module's algorithms live in segments somebody manages.  This tiny
    accumulator machine makes that literal — instructions are fetched
    through the same address translation as data, so executing code
    takes missing-segment/missing-page/quota faults exactly like
    touching it, and the kernel pages code on demand.

    Word layout (one instruction per word):
    {v
      bits 30-35  opcode
      bits 21-29  operand segment number (9 bits)
      bits  0-17  operand word number (18 bits)
    v}

    Opcodes: 0 HLT; 1 LDA a (acc := [a]); 2 STA a ([a] := acc);
    3 ADD a; 4 SUB a; 5 LDI imm18 (acc := wordno field);
    6 TRA a (jump); 7 TNZ a (jump if acc <> 0); 8 AOS a ([a] += 1).
    Unknown opcodes fault the program. *)

type state = {
  mutable acc : Word.t;
  mutable pc : Addr.virt;
  mutable steps : int;  (** instructions retired *)
}

val init : segno:int -> entry:int -> state

type opcode = HLT | LDA | STA | ADD | SUB | LDI | TRA | TNZ | AOS

val encode : opcode -> ?segno:int -> ?wordno:int -> unit -> Word.t
(** Assemble one instruction. *)

val assemble : (opcode * int * int) list -> Word.t list
(** [(op, segno, wordno)] triples to words. *)

type outcome =
  | Ok of int  (** one instruction retired; cost in ns *)
  | Halt of int
  | Fault of Fault.t  (** PC unchanged; re-execute after service *)
  | Illegal of string

val step : Hw_config.t -> Phys_mem.t -> Cpu.t -> state -> outcome
(** Fetch, decode, execute one instruction. *)
