type t = {
  data : int array;
  n_frames : int;
  mutable reads : int;
  mutable writes : int;
}

let create ~frames =
  assert (frames > 0);
  { data = Array.make (frames * Addr.page_size) 0; n_frames = frames;
    reads = 0; writes = 0 }

let frames t = t.n_frames
let words t = Array.length t.data

let read t a =
  if a < 0 || a >= Array.length t.data then
    invalid_arg (Printf.sprintf "Phys_mem.read: address %d out of range" a);
  t.reads <- t.reads + 1;
  t.data.(a)

let write t a w =
  if a < 0 || a >= Array.length t.data then
    invalid_arg (Printf.sprintf "Phys_mem.write: address %d out of range" a);
  t.writes <- t.writes + 1;
  t.data.(a) <- Word.of_int w

let read_frame t n =
  assert (n >= 0 && n < t.n_frames);
  Array.sub t.data (Addr.frame_base n) Addr.page_size

let write_frame t n img =
  assert (n >= 0 && n < t.n_frames);
  assert (Array.length img = Addr.page_size);
  Array.blit img 0 t.data (Addr.frame_base n) Addr.page_size

let zero_frame t n =
  assert (n >= 0 && n < t.n_frames);
  Array.fill t.data (Addr.frame_base n) Addr.page_size 0

let frame_is_zero t n =
  assert (n >= 0 && n < t.n_frames);
  let base = Addr.frame_base n in
  let rec loop i = i >= Addr.page_size || (t.data.(base + i) = 0 && loop (i + 1)) in
  loop 0

let reads t = t.reads
let writes t = t.writes
