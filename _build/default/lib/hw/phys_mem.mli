(** Primary memory.

    A flat array of 36-bit words organised as page frames.  Everything
    the processor can see — including page tables and descriptor
    segments — lives here; higher layers that keep "maps" keep them in
    these words, which is what makes the paper's map dependencies real
    in this reproduction. *)

type t

val create : frames:int -> t
(** Fresh memory of [frames] page frames, zero-filled. *)

val frames : t -> int
val words : t -> int

val read : t -> Addr.abs -> Word.t
(** Raises [Invalid_argument] outside physical memory. *)

val write : t -> Addr.abs -> Word.t -> unit

val read_frame : t -> int -> Word.t array
(** Copy of frame [n]'s 1024 words. *)

val write_frame : t -> int -> Word.t array -> unit
(** Overwrite frame [n]; the array must have [Addr.page_size] words. *)

val zero_frame : t -> int -> unit

val frame_is_zero : t -> int -> bool
(** True when every word of the frame is zero — the test the paper's
    page-removal algorithm performs before writing a page to disk. *)

val reads : t -> int
val writes : t -> int
(** Access counters, for the cost model and tests. *)
