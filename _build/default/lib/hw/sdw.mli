(** Segment descriptor words.

    An SDW occupies two consecutive 36-bit words of physical memory.  It
    points at the segment's page table (itself an array of PTWs in
    physical memory), bounds the segment, and carries the access bits
    and ring brackets consulted on every reference.

    Layout:
    {v
      word 0:  0-23 page-table absolute address; 24 present; 25 valid
      word 1:  0-8 length in pages; 9 read; 10 write; 11 execute;
               12-14 r1; 15-17 r2; 18-20 r3 (ring brackets, r1<=r2<=r3)
    v} *)

type t = {
  page_table : Addr.abs;  (** absolute address of the first PTW *)
  present : bool;         (** segment connected to this address space *)
  valid : bool;
  length : int;           (** pages; references at or beyond fault *)
  read : bool;
  write : bool;
  execute : bool;
  r1 : int;
  r2 : int;
  r3 : int;
}

val words : int
(** Words per SDW (2). *)

val invalid : t

val make :
  page_table:Addr.abs -> length:int -> read:bool -> write:bool ->
  execute:bool -> r1:int -> r2:int -> r3:int -> t
(** Present, valid descriptor.  Checks [r1 <= r2 && r2 <= r3]. *)

val encode : t -> Word.t * Word.t
val decode : Word.t * Word.t -> t

val read_at : Phys_mem.t -> Addr.abs -> t
val write_at : Phys_mem.t -> Addr.abs -> t -> unit

val permits : t -> ring:int -> Fault.access -> bool
(** Simplified Multics access rule, documented in DESIGN.md: write needs
    the write bit and [ring <= r1]; read needs the read bit and
    [ring <= r2]; execute needs the execute bit and [ring <= r2].
    Cross-ring calls are handled by gates above the hardware. *)

val pp : Format.formatter -> t -> unit
