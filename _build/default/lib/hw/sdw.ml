type t = {
  page_table : Addr.abs;
  present : bool;
  valid : bool;
  length : int;
  read : bool;
  write : bool;
  execute : bool;
  r1 : int;
  r2 : int;
  r3 : int;
}

let words = 2

let invalid =
  { page_table = 0; present = false; valid = false; length = 0; read = false;
    write = false; execute = false; r1 = 0; r2 = 0; r3 = 0 }

let make ~page_table ~length ~read ~write ~execute ~r1 ~r2 ~r3 =
  assert (r1 <= r2 && r2 <= r3);
  assert (length >= 0 && length <= Addr.max_pages_per_segment);
  { page_table; present = true; valid = true; length; read; write; execute;
    r1; r2; r3 }

let encode t =
  let w0 = Word.insert Word.zero ~pos:0 ~len:24 t.page_table in
  let w0 = Word.set_bit w0 24 t.present in
  let w0 = Word.set_bit w0 25 t.valid in
  let w1 = Word.insert Word.zero ~pos:0 ~len:9 t.length in
  let w1 = Word.set_bit w1 9 t.read in
  let w1 = Word.set_bit w1 10 t.write in
  let w1 = Word.set_bit w1 11 t.execute in
  let w1 = Word.insert w1 ~pos:12 ~len:3 t.r1 in
  let w1 = Word.insert w1 ~pos:15 ~len:3 t.r2 in
  let w1 = Word.insert w1 ~pos:18 ~len:3 t.r3 in
  (w0, w1)

let decode (w0, w1) =
  { page_table = Word.extract w0 ~pos:0 ~len:24;
    present = Word.bit w0 24;
    valid = Word.bit w0 25;
    length = Word.extract w1 ~pos:0 ~len:9;
    read = Word.bit w1 9;
    write = Word.bit w1 10;
    execute = Word.bit w1 11;
    r1 = Word.extract w1 ~pos:12 ~len:3;
    r2 = Word.extract w1 ~pos:15 ~len:3;
    r3 = Word.extract w1 ~pos:18 ~len:3 }

let read_at mem a = decode (Phys_mem.read mem a, Phys_mem.read mem (a + 1))

let write_at mem a t =
  let w0, w1 = encode t in
  Phys_mem.write mem a w0;
  Phys_mem.write mem (a + 1) w1

let permits t ~ring access =
  match access with
  | Fault.Write -> t.write && ring <= t.r1
  | Fault.Read -> t.read && ring <= t.r2
  | Fault.Execute -> t.execute && ring <= t.r2

let pp ppf t =
  Format.fprintf ppf "sdw{pt=%a len=%d %s%s%s rings=%d,%d,%d%s}" Addr.pp_abs
    t.page_table t.length
    (if t.read then "r" else "-")
    (if t.write then "w" else "-")
    (if t.execute then "e" else "-")
    t.r1 t.r2 t.r3
    (if t.present then "" else " absent")
