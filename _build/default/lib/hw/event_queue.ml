module Key = struct
  type t = int * int (* time, insertion sequence *)

  let compare (t1, s1) (t2, s2) =
    match compare t1 t2 with 0 -> compare s1 s2 | c -> c
end

module M = Map.Make (Key)

type t = { mutable events : (unit -> unit) M.t; mutable seq : int }

let create () = { events = M.empty; seq = 0 }
let is_empty t = M.is_empty t.events
let length t = M.cardinal t.events

let add t ~time handler =
  assert (time >= 0);
  t.events <- M.add (time, t.seq) handler t.events;
  t.seq <- t.seq + 1

let next_time t =
  match M.min_binding_opt t.events with
  | None -> None
  | Some ((time, _), _) -> Some time

let pop t =
  match M.min_binding_opt t.events with
  | None -> None
  | Some ((time, _) as key, handler) ->
      t.events <- M.remove key t.events;
      Some (time, handler)
