(** Machine configuration.

    The feature flags correspond to the three hardware additions the
    paper proposes for the new kernel design.  The legacy supervisor of
    Figures 2/3 runs with all three off; Kernel/Multics (Figure 4) runs
    with all three on.  The ablation bench flips them independently. *)

type t = {
  n_cpus : int;
  memory_frames : int;
  descriptor_lock_bit : bool;
      (** Missing-page faults atomically set the PTW lock bit; other
          processors then take locked-descriptor faults (paper p.19). *)
  quota_fault_bit : bool;
      (** References to never-allocated pages raise a distinct quota
          fault routed to the known segment manager (paper p.21). *)
  dual_dbr : bool;
      (** Second descriptor base register giving each processor a system
          address space independent of user address spaces (p.19). *)
  system_segno_split : int;
      (** With [dual_dbr], segment numbers below this value translate
          through the system descriptor table. *)
  mem_access_cost : int;  (** simulated nanoseconds per word access *)
  fault_overhead_cost : int;  (** processor fault/trap overhead, ns *)
  assoc_mem_size : int;
      (** Slots in the per-CPU SDW associative memory; 0 disables it
          (the 6180 had 16).  Off, every translation re-reads the SDW
          from memory and is charged [walk_cost]. *)
  walk_cost : int;
      (** Simulated ns for a full descriptor walk (SDW fetch). *)
  tlb_hit_cost : int;
      (** Simulated ns for a translation served by the associative
          memory. *)
}

val kernel_multics : t
(** Default configuration for the new design: 2 CPUs, 256 frames, all
    hardware additions enabled, system split at segment 64. *)

val legacy_multics : t
(** Old hardware: same resources, no additions, single DBR. *)

val with_frames : t -> int -> t
val with_cpus : t -> int -> t
val pp : Format.formatter -> t -> unit
