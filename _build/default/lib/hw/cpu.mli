(** Simulated processors.

    Each CPU owns the per-processor state the paper discusses: the
    descriptor base register(s), the wakeup-waiting switch, and the
    register recording the absolute address of a locked page descriptor
    (the last two prevent lost notifications between a locked-descriptor
    fault and the wait primitive, paper p.20). *)

type dbr = { base : Addr.abs; n_segments : int }
(** A descriptor base register: absolute address of an SDW array. *)

type t = {
  id : int;
  mutable ring : int;                      (** current ring of execution *)
  mutable user_dbr : dbr option;
  mutable system_dbr : dbr option;         (** used only with dual DBR *)
  mutable wakeup_waiting : bool;
  mutable locked_ptw : Addr.abs option;
  mutable busy_ns : int;                   (** accumulated busy time *)
  mutable idle_ns : int;
  mutable translations : int;
  mutable faults : int;
  tlb : Assoc_mem.t;                       (** SDW associative memory *)
  mutable xl_ns : int;
      (** Simulated ns spent in address translation (walks vs. AM
          hits).  The hw library cannot meter, so this accumulates and
          the kernel's dispatcher folds the delta into step costs. *)
}

val create : id:int -> t

val load_user_dbr : t -> dbr option -> unit
(** Performed by the dispatcher on every process switch.  Flushes the
    associative memory: its contents describe the outgoing space. *)

val translate :
  Hw_config.t -> Phys_mem.t -> t -> Addr.virt -> Fault.access ->
  (Addr.abs, Fault.t) result
(** One address translation.  Consults the system descriptor table for
    segment numbers below the split when [dual_dbr] is on.  Side
    effects mirror the hardware: sets the PTW used/modified bits on
    success; with [descriptor_lock_bit], atomically sets the lock bit
    and records [locked_ptw] when a missing-page fault is taken.

    With [assoc_mem_size > 0] the SDW comes from the associative
    memory when present, skipping the descriptor-table fetch and
    charging [tlb_hit_cost] instead of [walk_cost] to [xl_ns].  The
    PTW is always re-read, so results and memory side effects are
    identical with the AM on or off. *)

val read :
  Hw_config.t -> Phys_mem.t -> t -> Addr.virt -> (Word.t, Fault.t) result

val write :
  Hw_config.t -> Phys_mem.t -> t -> Addr.virt -> Word.t ->
  (unit, Fault.t) result
