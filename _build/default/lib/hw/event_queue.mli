(** Discrete-event priority queue.

    Events are (time, handler) pairs; ties break in insertion order so
    simulations are deterministic. *)

type t

val create : unit -> t
val is_empty : t -> bool
val length : t -> int

val add : t -> time:int -> (unit -> unit) -> unit
(** Schedule [handler] at absolute simulated [time]. *)

val next_time : t -> int option
(** Time of the earliest pending event. *)

val pop : t -> (int * (unit -> unit)) option
(** Remove and return the earliest event. *)
