type t = int

let width = 36
let mask = (1 lsl width) - 1
let zero = 0
let of_int v = v land mask
let to_int v = v
let is_zero v = v = 0
let add a b = (a + b) land mask
let logand = ( land )
let logor = ( lor )
let logxor = ( lxor )

let extract w ~pos ~len =
  assert (pos >= 0 && len > 0 && pos + len <= width);
  (w lsr pos) land ((1 lsl len) - 1)

let insert w ~pos ~len v =
  assert (pos >= 0 && len > 0 && pos + len <= width);
  let field_mask = ((1 lsl len) - 1) lsl pos in
  w land lnot field_mask lor ((v lsl pos) land field_mask)

let bit w i = (w lsr i) land 1 = 1
let set_bit w i b = if b then w lor (1 lsl i) else w land lnot (1 lsl i)
let pp ppf w = Format.fprintf ppf "%012o" w
