lib/hw/fault.mli: Addr Format
