lib/hw/fault.ml: Addr Format
