lib/hw/assoc_mem.mli: Format Sdw
