lib/hw/machine.ml: Array Assoc_mem Cpu Disk Event_queue Format Hw_config List Phys_mem
