lib/hw/machine.ml: Array Cpu Disk Event_queue Format Hw_config Phys_mem
