lib/hw/disk.mli: Word
