lib/hw/ptw.mli: Addr Format Phys_mem Word
