lib/hw/sdw.mli: Addr Fault Format Phys_mem Word
