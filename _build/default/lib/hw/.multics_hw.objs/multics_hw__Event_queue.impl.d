lib/hw/event_queue.ml: Map
