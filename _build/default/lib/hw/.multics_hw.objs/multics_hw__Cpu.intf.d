lib/hw/cpu.mli: Addr Fault Hw_config Phys_mem Word
