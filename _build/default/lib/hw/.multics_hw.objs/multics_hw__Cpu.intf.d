lib/hw/cpu.mli: Addr Assoc_mem Fault Hw_config Phys_mem Word
