lib/hw/machine.mli: Cpu Disk Event_queue Format Hw_config Phys_mem
