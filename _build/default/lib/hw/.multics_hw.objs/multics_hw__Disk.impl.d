lib/hw/disk.ml: Addr Array Hashtbl List Option Word
