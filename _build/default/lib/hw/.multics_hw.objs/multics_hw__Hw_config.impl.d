lib/hw/hw_config.ml: Format
