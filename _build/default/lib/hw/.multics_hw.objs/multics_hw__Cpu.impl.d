lib/hw/cpu.ml: Addr Fault Hw_config Phys_mem Ptw Sdw
