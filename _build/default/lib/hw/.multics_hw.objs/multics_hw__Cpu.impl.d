lib/hw/cpu.ml: Addr Assoc_mem Fault Hw_config Phys_mem Ptw Sdw
