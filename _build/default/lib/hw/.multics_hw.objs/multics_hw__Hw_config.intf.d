lib/hw/hw_config.mli: Format
