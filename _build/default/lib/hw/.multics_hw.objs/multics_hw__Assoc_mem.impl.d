lib/hw/assoc_mem.ml: Array Format Sdw
