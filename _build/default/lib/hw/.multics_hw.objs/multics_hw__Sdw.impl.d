lib/hw/sdw.ml: Addr Fault Format Phys_mem Word
