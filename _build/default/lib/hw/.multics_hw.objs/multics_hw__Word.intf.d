lib/hw/word.mli: Format
