lib/hw/isa.mli: Addr Cpu Fault Hw_config Phys_mem Word
