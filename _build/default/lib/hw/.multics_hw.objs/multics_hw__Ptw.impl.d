lib/hw/ptw.ml: Format Phys_mem Word
