lib/hw/addr.mli: Format
