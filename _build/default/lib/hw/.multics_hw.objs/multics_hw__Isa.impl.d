lib/hw/isa.ml: Addr Cpu Fault Format List Phys_mem Printf Stdlib Word
