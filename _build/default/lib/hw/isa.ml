type state = {
  mutable acc : Word.t;
  mutable pc : Addr.virt;
  mutable steps : int;
}

let init ~segno ~entry =
  { acc = 0; pc = Addr.virt ~segno ~wordno:entry; steps = 0 }

type opcode = HLT | LDA | STA | ADD | SUB | LDI | TRA | TNZ | AOS

let opcode_num = function
  | HLT -> 0
  | LDA -> 1
  | STA -> 2
  | ADD -> 3
  | SUB -> 4
  | LDI -> 5
  | TRA -> 6
  | TNZ -> 7
  | AOS -> 8

let opcode_of_num = function
  | 0 -> Some HLT
  | 1 -> Some LDA
  | 2 -> Some STA
  | 3 -> Some ADD
  | 4 -> Some SUB
  | 5 -> Some LDI
  | 6 -> Some TRA
  | 7 -> Some TNZ
  | 8 -> Some AOS
  | _ -> None

let encode op ?(segno = 0) ?(wordno = 0) () =
  let w = Word.insert Word.zero ~pos:30 ~len:6 (opcode_num op) in
  let w = Word.insert w ~pos:21 ~len:9 segno in
  Word.insert w ~pos:0 ~len:18 wordno

let assemble instructions =
  List.map (fun (op, segno, wordno) -> encode op ~segno ~wordno ()) instructions

type outcome = Ok of int | Halt of int | Fault of Fault.t | Illegal of string

let instruction_cost = 400

let bump state =
  state.pc <-
    Addr.virt ~segno:state.pc.Addr.segno ~wordno:(state.pc.Addr.wordno + 1);
  state.steps <- state.steps + 1

let step config mem cpu state =
  match Cpu.translate config mem cpu state.pc Fault.Execute with
  | Error f -> Fault f
  | (exception Invalid_argument _) -> Illegal "program counter out of range"
  | Stdlib.Ok fetch_abs -> (
      let word = Phys_mem.read mem fetch_abs in
      match opcode_of_num (Word.extract word ~pos:30 ~len:6) with
      | None ->
          Illegal
            (Printf.sprintf "illegal opcode %d at %s"
               (Word.extract word ~pos:30 ~len:6)
               (Format.asprintf "%a" Addr.pp_virt state.pc))
      | Some op -> (
          let segno = Word.extract word ~pos:21 ~len:9 in
          let wordno = Word.extract word ~pos:0 ~len:18 in
          let operand access k =
            match
              Cpu.translate config mem cpu (Addr.virt ~segno ~wordno) access
            with
            | Error f -> Fault f
            | exception Invalid_argument _ ->
                Illegal "operand address out of range"
            | Stdlib.Ok abs -> k abs
          in
          match op with
          | HLT ->
              state.steps <- state.steps + 1;
              Halt instruction_cost
          | LDA ->
              operand Fault.Read (fun abs ->
                  state.acc <- Phys_mem.read mem abs;
                  bump state;
                  Ok instruction_cost)
          | STA ->
              operand Fault.Write (fun abs ->
                  Phys_mem.write mem abs state.acc;
                  bump state;
                  Ok instruction_cost)
          | ADD ->
              operand Fault.Read (fun abs ->
                  state.acc <- Word.add state.acc (Phys_mem.read mem abs);
                  bump state;
                  Ok instruction_cost)
          | SUB ->
              operand Fault.Read (fun abs ->
                  (* two's complement subtraction within 36 bits *)
                  state.acc <-
                    Word.add state.acc
                      (Word.of_int (Word.mask + 1 - Phys_mem.read mem abs));
                  bump state;
                  Ok instruction_cost)
          | LDI ->
              state.acc <- Word.of_int wordno;
              bump state;
              Ok instruction_cost
          | TRA ->
              state.pc <- Addr.virt ~segno ~wordno;
              state.steps <- state.steps + 1;
              Ok instruction_cost
          | TNZ ->
              if Word.is_zero state.acc then bump state
              else begin
                state.pc <- Addr.virt ~segno ~wordno;
                state.steps <- state.steps + 1
              end;
              Ok instruction_cost
          | AOS ->
              operand Fault.Write (fun abs ->
                  Phys_mem.write mem abs (Word.add (Phys_mem.read mem abs) 1);
                  bump state;
                  Ok instruction_cost)))
