type t = { level : Level.t; compartments : Compartment.t }

let make level compartments = { level; compartments }
let system_low = { level = Level.bottom; compartments = Compartment.empty }

let dominates a b =
  Level.compare a.level b.level >= 0
  && Compartment.subset b.compartments a.compartments

let equal a b =
  Level.compare a.level b.level = 0
  && Compartment.equal a.compartments b.compartments

let strictly_dominates a b = dominates a b && not (equal a b)

let lub a b =
  { level = Level.max_level a.level b.level;
    compartments = Compartment.union a.compartments b.compartments }

let glb a b =
  { level = Level.min_level a.level b.level;
    compartments = Compartment.inter a.compartments b.compartments }

let comparable a b = dominates a b || dominates b a

let encode t =
  (Level.to_int t.level lsl Compartment.max_compartments)
  lor Compartment.to_int t.compartments

let decode i =
  { level = Level.of_int (i lsr Compartment.max_compartments land 7);
    compartments = Compartment.of_int i }

let pp ppf t =
  Format.fprintf ppf "%a%a" Level.pp t.level Compartment.pp t.compartments

let to_string t = Format.asprintf "%a" pp t
