type t = int

let empty = 0
let max_compartments = 18

let check i =
  if i < 0 || i >= max_compartments then
    invalid_arg "Compartment: index out of range"

let singleton i = check i; 1 lsl i
let add t i = check i; t lor (1 lsl i)
let of_list l = List.fold_left add empty l

let to_list t =
  List.filter (fun i -> t land (1 lsl i) <> 0)
    (List.init max_compartments (fun i -> i))

let mem t i = check i; t land (1 lsl i) <> 0
let union = ( lor )
let inter = ( land )
let subset a b = a land b = a
let equal = ( = )
let to_int t = t
let of_int i = i land ((1 lsl max_compartments) - 1)

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (to_list t)))
