(** Compartment sets.

    A compartment is a named category ("NATO", "CRYPTO", ...); a label
    carries a set of them.  Represented as a bitset of up to 18
    compartment indices so a whole label packs into one machine word for
    storage in VTOC entries. *)

type t

val empty : t
val max_compartments : int
val singleton : int -> t
val of_list : int list -> t
val to_list : t -> int list
val add : t -> int -> t
val mem : t -> int -> bool
val union : t -> t -> t
val inter : t -> t -> t
val subset : t -> t -> bool
(** [subset a b] is true when every compartment of [a] is in [b]. *)

val equal : t -> t -> bool
val to_int : t -> int
val of_int : int -> t
val pp : Format.formatter -> t -> unit
