type subject = { subject_name : string; label : Label.t; trusted : bool }

type decision = Granted | Granted_trusted | Denied

let can_observe subject ~object_label =
  if Label.dominates subject.label object_label then Granted
  else if subject.trusted then Granted_trusted
  else Denied

let can_modify subject ~object_label =
  if Label.dominates object_label subject.label then Granted
  else if subject.trusted then Granted_trusted
  else Denied

let check ?audit subject ~object_label ~object_name op =
  let decision, operation =
    match op with
    | `Observe -> (can_observe subject ~object_label, "observe")
    | `Modify -> (can_modify subject ~object_label, "modify")
  in
  let log outcome =
    match audit with
    | None -> ()
    | Some a ->
        Audit.record a
          { Audit.subject = subject.subject_name; object_name; operation;
            subject_label = subject.label; object_label; outcome }
  in
  match decision with
  | Granted ->
      Option.iter Audit.record_grant audit;
      true
  | Granted_trusted ->
      log "trusted-override";
      true
  | Denied ->
      log "denied";
      false
