(** AIM labels: a sensitivity level paired with a compartment set.

    Labels form a lattice under [dominates]: [dominates a b] holds when
    [a]'s level is at least [b]'s and [a]'s compartments include [b]'s.
    The MITRE model's information-flow rule is that information may flow
    from [b] to [a] only when [a] dominates [b]. *)

type t = { level : Level.t; compartments : Compartment.t }

val make : Level.t -> Compartment.t -> t
val system_low : t
(** Bottom of the lattice: unclassified, no compartments. *)

val dominates : t -> t -> bool
val equal : t -> t -> bool
val strictly_dominates : t -> t -> bool

val lub : t -> t -> t
(** Least upper bound. *)

val glb : t -> t -> t
(** Greatest lower bound. *)

val comparable : t -> t -> bool
(** True when one dominates the other. *)

val encode : t -> int
(** Pack into 21 bits (3 level + 18 compartments) for storage in VTOC
    entries and descriptor words. *)

val decode : int -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
