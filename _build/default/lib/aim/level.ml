type t = int

let bottom = 0

let of_int i =
  if i < 0 || i > 7 then invalid_arg "Level.of_int: levels are 0..7" else i

let to_int t = t
let unclassified = 0
let confidential = 1
let secret = 2
let top_secret = 3
let compare = Stdlib.compare
let max_level = max
let min_level = min

let to_string = function
  | 0 -> "unclassified"
  | 1 -> "confidential"
  | 2 -> "secret"
  | 3 -> "top-secret"
  | n -> Printf.sprintf "level-%d" n

let pp ppf t = Format.pp_print_string ppf (to_string t)
