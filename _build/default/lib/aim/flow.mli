(** Information-flow checks.

    The two Bell–LaPadula rules the kernel's gates apply at every point
    where information could cross a level or compartment boundary:

    - simple security ("no read up"): a subject may observe an object
      only when the subject's label dominates the object's;
    - the *-property ("no write down"): a subject may modify an object
      only when the object's label dominates the subject's.

    Trusted subjects (the paper's trusted processes, e.g. the Answering
    Service) are exempt from the *-property but every exemption is
    recorded in the audit trail. *)

type subject = { subject_name : string; label : Label.t; trusted : bool }

type decision = Granted | Granted_trusted | Denied

val can_observe : subject -> object_label:Label.t -> decision
val can_modify : subject -> object_label:Label.t -> decision

val check :
  ?audit:Audit.t -> subject -> object_label:Label.t -> object_name:string ->
  [ `Observe | `Modify ] -> bool
(** Apply the rule, record the outcome in the audit trail when one is
    supplied, and return whether access is granted. *)
