(** Sensitivity levels.

    AIM labels every piece of information with a sensitivity level; the
    MITRE (Bell and LaPadula) model orders them totally.  Multics AIM
    provided eight levels; we use the conventional four names for the
    first four and numeric names above. *)

type t

val bottom : t
(** The least level (level 0, "unclassified"). *)

val of_int : int -> t
(** Levels 0..7; raises [Invalid_argument] outside that range. *)

val to_int : t -> int
val unclassified : t
val confidential : t
val secret : t
val top_secret : t
val compare : t -> t -> int
val max_level : t -> t -> t
val min_level : t -> t -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
