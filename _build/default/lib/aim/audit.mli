(** The AIM audit trail.

    Every flow decision involving a denial or a trusted-subject override
    is recorded; benches and the secure-timesharing example read the
    trail back.  Grants are counted but not stored individually. *)

type event = {
  subject : string;
  object_name : string;
  operation : string;  (** "observe" or "modify" *)
  subject_label : Label.t;
  object_label : Label.t;
  outcome : string;  (** "denied" or "trusted-override" *)
}

type t

val create : unit -> t
val record_grant : t -> unit
val record : t -> event -> unit
val events : t -> event list
(** Oldest first. *)

val denials : t -> int
val overrides : t -> int
val grants : t -> int
val pp : Format.formatter -> t -> unit
