(** An executable fragment of the MITRE (Bell and LaPadula) model —
    the formal specification of the paper's box 4.

    The model's state is the set of current accesses: triples of a
    subject observing or modifying an object.  A state is {e secure}
    when every triple satisfies the simple security property (observe ⟹
    subject dominates object) and the *-property (modify ⟹ object
    dominates subject, for untrusted subjects).

    [request] is the transition rule: it grants an access only if the
    resulting state would remain secure.  The Basic Security Theorem —
    every state reachable through [request]/[release] from the empty
    state is secure — is checked as a property test over random request
    sequences, and the kernel's {!Flow} decisions are tested to agree
    with this specification point for point. *)

type access = Observe | Modify

type t

val create : unit -> t

val add_subject : t -> name:string -> label:Label.t -> trusted:bool -> unit
val add_object : t -> name:string -> label:Label.t -> unit

val request :
  t -> subject:string -> object_:string -> access ->
  [ `Granted | `Refused ]
(** Grant iff the new current-access set would still be secure.
    Raises [Invalid_argument] for unknown names. *)

val release : t -> subject:string -> object_:string -> access -> unit

val current : t -> (string * string * access) list

val secure : t -> bool
(** Does every current access satisfy both properties? *)

val violations : t -> string list
(** Explanations for any triple violating a property. *)
