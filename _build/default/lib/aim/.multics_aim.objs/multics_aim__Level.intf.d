lib/aim/level.mli: Format
