lib/aim/label.mli: Compartment Format Level
