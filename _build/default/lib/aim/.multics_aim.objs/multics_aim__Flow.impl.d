lib/aim/flow.ml: Audit Label Option
