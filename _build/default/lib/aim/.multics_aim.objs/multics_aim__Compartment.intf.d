lib/aim/compartment.mli: Format
