lib/aim/mitre.ml: Hashtbl Label List Printf
