lib/aim/level.ml: Format Printf Stdlib
