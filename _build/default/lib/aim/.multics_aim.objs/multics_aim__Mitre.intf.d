lib/aim/mitre.mli: Label
