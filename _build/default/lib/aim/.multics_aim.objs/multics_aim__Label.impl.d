lib/aim/label.ml: Compartment Format Level
