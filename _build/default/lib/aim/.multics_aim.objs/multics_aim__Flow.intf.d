lib/aim/flow.mli: Audit Label
