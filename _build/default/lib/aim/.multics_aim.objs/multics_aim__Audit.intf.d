lib/aim/audit.mli: Format Label
