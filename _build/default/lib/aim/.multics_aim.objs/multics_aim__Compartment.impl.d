lib/aim/compartment.ml: Format List String
