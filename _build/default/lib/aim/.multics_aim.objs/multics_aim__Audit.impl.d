lib/aim/audit.ml: Format Label List
