type access = Observe | Modify

type subject = { s_label : Label.t; s_trusted : bool }

type t = {
  subjects : (string, subject) Hashtbl.t;
  objects : (string, Label.t) Hashtbl.t;
  mutable current : (string * string * access) list;
}

let create () =
  { subjects = Hashtbl.create 8; objects = Hashtbl.create 8; current = [] }

let add_subject t ~name ~label ~trusted =
  Hashtbl.replace t.subjects name { s_label = label; s_trusted = trusted }

let add_object t ~name ~label = Hashtbl.replace t.objects name label

let subject t name =
  match Hashtbl.find_opt t.subjects name with
  | Some s -> s
  | None -> invalid_arg ("Mitre: unknown subject " ^ name)

let object_label t name =
  match Hashtbl.find_opt t.objects name with
  | Some l -> l
  | None -> invalid_arg ("Mitre: unknown object " ^ name)

let triple_ok t (s_name, o_name, access) =
  let s = subject t s_name in
  let o = object_label t o_name in
  match access with
  | Observe -> Label.dominates s.s_label o || s.s_trusted
  | Modify -> Label.dominates o s.s_label || s.s_trusted

let secure t = List.for_all (triple_ok t) t.current

let violations t =
  List.filter_map
    (fun ((s_name, o_name, access) as triple) ->
      if triple_ok t triple then None
      else
        Some
          (Printf.sprintf "%s %s %s violates the %s" s_name
             (match access with Observe -> "observes" | Modify -> "modifies")
             o_name
             (match access with
             | Observe -> "simple security property"
             | Modify -> "*-property")))
    t.current

let request t ~subject:s_name ~object_:o_name access =
  (* Validate the names eagerly. *)
  ignore (subject t s_name);
  ignore (object_label t o_name);
  let candidate = (s_name, o_name, access) in
  if triple_ok t candidate then begin
    if not (List.mem candidate t.current) then
      t.current <- candidate :: t.current;
    `Granted
  end
  else `Refused

let release t ~subject:s_name ~object_:o_name access =
  t.current <-
    List.filter (fun triple -> triple <> (s_name, o_name, access)) t.current

let current t = List.rev t.current
