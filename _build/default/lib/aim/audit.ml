type event = {
  subject : string;
  object_name : string;
  operation : string;
  subject_label : Label.t;
  object_label : Label.t;
  outcome : string;
}

type t = {
  mutable log : event list;  (* newest first *)
  mutable denial_count : int;
  mutable override_count : int;
  mutable grant_count : int;
}

let create () =
  { log = []; denial_count = 0; override_count = 0; grant_count = 0 }

let record_grant t = t.grant_count <- t.grant_count + 1

let record t event =
  t.log <- event :: t.log;
  if event.outcome = "denied" then t.denial_count <- t.denial_count + 1
  else if event.outcome = "trusted-override" then
    t.override_count <- t.override_count + 1

let events t = List.rev t.log
let denials t = t.denial_count
let overrides t = t.override_count
let grants t = t.grant_count

let pp ppf t =
  Format.fprintf ppf "aim-audit: %d grants, %d denials, %d trusted overrides@."
    t.grant_count t.denial_count t.override_count;
  List.iter
    (fun e ->
      Format.fprintf ppf "  %s: %s (%a) %s %s (%a)@." e.outcome e.subject
        Label.pp e.subject_label e.operation e.object_name Label.pp
        e.object_label)
    (events t)
