lib/services/password.mli:
