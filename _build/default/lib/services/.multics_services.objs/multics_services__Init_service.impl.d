lib/services/init_service.ml: List
