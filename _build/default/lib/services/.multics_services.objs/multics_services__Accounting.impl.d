lib/services/accounting.ml: Format Hashtbl List
