lib/services/answering_service.mli: Accounting Multics_aim Multics_kernel
