lib/services/accounting.mli: Format
