lib/services/network.ml: Hashtbl Multics_hw Multics_kernel Multics_sync
