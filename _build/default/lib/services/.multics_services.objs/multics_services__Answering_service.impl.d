lib/services/answering_service.ml: Accounting Hashtbl Multics_aim Multics_kernel Password
