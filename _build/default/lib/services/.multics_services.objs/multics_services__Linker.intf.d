lib/services/linker.mli: Multics_kernel
