lib/services/linker.ml: Hashtbl Multics_kernel
