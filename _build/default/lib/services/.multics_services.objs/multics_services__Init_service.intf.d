lib/services/init_service.mli:
