lib/services/network.mli: Multics_kernel
