lib/services/password.ml: Char Printf String
