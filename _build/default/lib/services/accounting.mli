(** System accounting, kept by the Answering Service. *)

type record = {
  mutable logins : int;
  mutable failed_logins : int;
  mutable connect_ns : int;
  mutable cpu_ns : int;
  mutable pages_used : int;
}

type t

val create : unit -> t
val record_for : t -> user:string -> record
val note_login : t -> user:string -> unit
val note_failure : t -> user:string -> unit
val note_usage : t -> user:string -> connect_ns:int -> cpu_ns:int -> pages:int -> unit
val users : t -> string list
val pp : Format.formatter -> t -> unit
