type variant = In_kernel | Previous_incarnation

type step = { step_name : string; build_cost : int; verify_cost : int }

let catalogue =
  [ { step_name = "configuration_deck"; build_cost = 120_000; verify_cost = 8_000 };
    { step_name = "sst_and_page_tables"; build_cost = 450_000; verify_cost = 25_000 };
    { step_name = "descriptor_segments"; build_cost = 220_000; verify_cost = 12_000 };
    { step_name = "interrupt_vectors"; build_cost = 90_000; verify_cost = 6_000 };
    { step_name = "io_channel_tables"; build_cost = 310_000; verify_cost = 15_000 };
    { step_name = "volume_registration"; build_cost = 260_000; verify_cost = 14_000 };
    { step_name = "root_directory"; build_cost = 180_000; verify_cost = 10_000 };
    { step_name = "scheduler_queues"; build_cost = 75_000; verify_cost = 5_000 } ]

type result = {
  boot_kernel_ns : int;
  prior_user_ns : int;
  kernel_lines : int;
  steps_run : int;
}

let run variant =
  match variant with
  | In_kernel ->
      let boot =
        List.fold_left (fun acc s -> acc + s.build_cost) 0 catalogue
      in
      { boot_kernel_ns = boot; prior_user_ns = 0; kernel_lines = 2_100;
        steps_run = List.length catalogue }
  | Previous_incarnation ->
      (* The heavy construction happened in a user process last
         incarnation; boot only loads and verifies. *)
      let prior =
        List.fold_left (fun acc s -> acc + s.build_cost) 0 catalogue
      in
      let boot =
        List.fold_left (fun acc s -> acc + s.verify_cost) 0 catalogue
      in
      { boot_kernel_ns = boot; prior_user_ns = prior; kernel_lines = 150;
        steps_run = List.length catalogue }
