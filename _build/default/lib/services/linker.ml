module K = Multics_kernel

type placement = In_kernel | User_ring

type t = {
  kernel : K.Kernel.t;
  placement : placement;
  snapped : (string, unit) Hashtbl.t;
  mutable links : int;
  mutable probes : int;
  mutable crossings : int;
}

let create ~kernel ~placement =
  { kernel; placement; snapped = Hashtbl.create 32; links = 0; probes = 0;
    crossings = 0 }

let placement t = t.placement

let meter t = K.Kernel.meter t.kernel

let charge_kernel t ns =
  K.Meter.charge (meter t) ~manager:"dynamic_linker_ring0" K.Cost.Pl1 ns

let charge_user t ns =
  K.Meter.charge (meter t) ~manager:"dynamic_linker_user" K.Cost.Pl1 ns

(* One directory probe for [symbol]. *)
let probe t ~subject ~ring ~dir ~symbol =
  t.probes <- t.probes + 1;
  let path = dir ^ ">" ^ symbol in
  match t.placement with
  | In_kernel -> (
      (* Inside ring 0 the linker walks directory control directly —
         no gates, but the walk itself is kernel code. *)
      charge_kernel t K.Cost.link_search_step;
      let dm = K.Kernel.directory t.kernel in
      let rec walk dir_uid = function
        | [] -> None
        | [ leaf ] -> (
            match
              K.Directory.initiate_target dm ~caller:K.Registry.gate ~subject
                ~dir_uid ~name:leaf
            with
            | Ok target
              when target.K.Directory.t_mode.K.Acl.read
                   || target.K.Directory.t_mode.K.Acl.execute ->
                Some target
            | Ok _ | Error `No_access -> None)
        | comp :: rest -> (
            match
              K.Directory.search dm ~caller:K.Registry.gate ~subject ~dir_uid
                ~name:comp
            with
            | `Found uid -> walk uid rest
            | `No_entry -> None)
      in
      match K.Name_space.components path with
      | [] -> None
      | comps -> walk (K.Directory.root_uid dm) comps)
  | User_ring -> (
      (* Each probe crosses into the kernel through the search gates. *)
      t.crossings <- t.crossings + 2;
      charge_user t K.Cost.link_search_step;
      match
        K.Name_space.initiate (K.Kernel.name_space t.kernel) ~subject ~ring
          ~path
      with
      | Ok target
        when target.K.Directory.t_mode.K.Acl.read
             || target.K.Directory.t_mode.K.Acl.execute ->
          Some target
      | Ok _ | Error (`No_access | `Bad_path) -> None)

let resolve t ~subject ~ring ~symbol ~search_rules =
  let rec try_rules = function
    | [] -> Error `Unresolved
    | dir :: rest -> (
        match probe t ~subject ~ring ~dir ~symbol with
        | Some target ->
            t.links <- t.links + 1;
            Hashtbl.replace t.snapped symbol ();
            (match t.placement with
            | In_kernel -> charge_kernel t K.Cost.link_snap
            | User_ring -> charge_user t K.Cost.link_snap);
            Ok (target, dir)
        | None -> try_rules rest)
  in
  try_rules search_rules

let snap_cache_lookup t ~symbol =
  (match t.placement with
  | In_kernel -> charge_kernel t (K.Cost.kernel_call / 2)
  | User_ring -> charge_user t (K.Cost.kernel_call / 2));
  Hashtbl.mem t.snapped symbol

let links_snapped t = t.links
let probes t = t.probes
let gate_crossings t = t.crossings
