(** The dynamic linker, in both placements (Janson, 1974).

    Resolving a symbolic reference means walking the process's search
    rules — a list of directories — probing each for the symbol, then
    snapping the link.  Nothing in that requires kernel privilege.

    [In_kernel]: the link fault traps to ring 0 and the whole search
    runs there (no gate crossings, but 2,000 lines inside the audit
    boundary and 17 extra user-callable entry points).

    [User_ring]: the fault is reflected to the user ring; each probe is
    a kernel search gate call.  The paper: "the dynamic linker ran
    somewhat slower when removed from the kernel, [but] the causes were
    well understood and curable". *)

type placement = In_kernel | User_ring

type t

val create : kernel:Multics_kernel.Kernel.t -> placement:placement -> t
val placement : t -> placement

val resolve :
  t -> subject:Multics_kernel.Directory.subject -> ring:int -> symbol:string ->
  search_rules:string list ->
  (Multics_kernel.Directory.target * string, [ `Unresolved ]) result
(** Probe each search-rule directory for a segment named [symbol]; on
    success snap the link (returns the target and the winning
    directory).  All costs land on the kernel's meter. *)

val snap_cache_lookup : t -> symbol:string -> bool
(** Already-snapped links cost almost nothing; true on hit. *)

val links_snapped : t -> int
val probes : t -> int
val gate_crossings : t -> int
(** Crossings attributable to linking (0 when in-kernel). *)
