type hashed = { salt : string; digest : int }

let iterations = 64

let fnv1a input =
  let h = ref 0x3f29ce484222325 in
  String.iter
    (fun ch -> h := (!h lxor Char.code ch) * 0x100000001b3 land max_int)
    input;
  !h

let hash ~salt password =
  let rec iterate digest n =
    if n = 0 then digest
    else iterate (fnv1a (salt ^ string_of_int digest ^ password)) (n - 1)
  in
  { salt; digest = iterate (fnv1a (salt ^ password)) iterations }

let verify hashed password = (hash ~salt:hashed.salt password).digest = hashed.digest
let to_string h = Printf.sprintf "%s$%x" h.salt h.digest
