(** Password hashing for the Answering Service.

    A salted, iterated FNV-style hash.  NOT cryptographic — the paper's
    question is {e where} authentication lives (inside or outside the
    kernel), not how strong the hash is; a real deployment would
    substitute a memory-hard KDF. *)

type hashed

val hash : salt:string -> string -> hashed
val verify : hashed -> string -> bool
val iterations : int
(** Hash rounds; the simulated cost model charges proportionally. *)

val to_string : hashed -> string
