(** System initialisation (Luniewski, 1977).

    Initialisation builds a pile of tables before the kernel proper can
    run.  The redesign performs most of that work "in a user process
    environment in a previous system incarnation": the prior system
    computes and checks the tables, writes them out, and the next boot
    merely loads and verifies them — removing about 2,000 lines from
    the kernel.

    The model: a fixed catalogue of initialisation steps, each either
    executed in-kernel at boot, or pre-computed (cheaply verified at
    boot). *)

type variant = In_kernel | Previous_incarnation

type step = { step_name : string; build_cost : int; verify_cost : int }

val catalogue : step list
(** The tables a Multics boot constructs. *)

type result = {
  boot_kernel_ns : int;  (** simulated ns of ring-0 work at boot *)
  prior_user_ns : int;  (** work done ahead of time in the user process *)
  kernel_lines : int;  (** initialisation code inside the kernel *)
  steps_run : int;
}

val run : variant -> result
