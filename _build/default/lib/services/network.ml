module K = Multics_kernel
module Hw = Multics_hw

type net = Arpanet | Front_end

type variant = Per_network_in_kernel | Generic_demux

type t = {
  kernel : K.Kernel.t;
  variant : variant;
  channels : (string, net) Hashtbl.t;
  mutable delivered : int;
  mutable kernel_ns : int;
  mutable user_ns : int;
}

let create ~kernel ~variant =
  { kernel; variant; channels = Hashtbl.create 16; delivered = 0;
    kernel_ns = 0; user_ns = 0 }

let variant t = t.variant

let attach_channel t ~net ~channel = Hashtbl.replace t.channels channel net

(* Protocol work per message scales with size; the ARPANET's NCP does
   more per message than the front-end's simple terminal framing. *)
let protocol_steps net bytes =
  match net with
  | Arpanet -> 2 + (bytes / 256)
  | Front_end -> 1 + (bytes / 512)

let deliver t ~net ~channel ~bytes =
  let meter = K.Kernel.meter t.kernel in
  let steps = protocol_steps net bytes in
  (* The interrupt and demultiplexing are kernel work in either
     arrangement. *)
  let demux = K.Cost.scale K.Cost.Pl1 K.Cost.net_demux_packet in
  K.Meter.charge meter ~manager:"network_demux" K.Cost.Pl1
    K.Cost.net_demux_packet;
  t.kernel_ns <- t.kernel_ns + demux;
  let proto = steps * K.Cost.net_protocol_step in
  (match t.variant with
  | Per_network_in_kernel ->
      K.Meter.charge meter ~manager:"network_protocols_ring0" K.Cost.Pl1 proto;
      t.kernel_ns <- t.kernel_ns + K.Cost.scale K.Cost.Pl1 proto
  | Generic_demux ->
      (* Hand the submessage out of the kernel, process it there. *)
      K.Meter.charge meter ~manager:"network_protocols_user" K.Cost.Pl1
        (K.Cost.ring_crossing + proto);
      t.user_ns <- t.user_ns + K.Cost.scale K.Cost.Pl1 proto);
  t.delivered <- t.delivered + 1;
  (* Wake whoever awaits the channel. *)
  let ec =
    K.User_process.user_eventcount (K.Kernel.user_process t.kernel) channel
  in
  Multics_sync.Eventcount.advance ec

let inject t ~net ~channel ~bytes ~delay_ns =
  (match Hashtbl.find_opt t.channels channel with
  | Some declared when declared = net -> ()
  | Some _ -> invalid_arg "Network.inject: channel attached to another net"
  | None -> invalid_arg "Network.inject: unknown channel");
  Hw.Machine.schedule (K.Kernel.machine t.kernel) ~delay:delay_ns (fun () ->
      deliver t ~net ~channel ~bytes)

let delivered t = t.delivered
let kernel_protocol_ns t = t.kernel_ns
let user_protocol_ns t = t.user_ns

let kernel_lines t ~networks =
  match t.variant with
  | Per_network_in_kernel -> networks * 3_500
  | Generic_demux -> 900 + (networks * 40)
