(* The stored-program machine: programs live in segments and execute
   through real address translation — "the algorithms of M ... are
   contained in objects" made literal. *)

module K = Multics_kernel
module Hw = Multics_hw
module Aim = Multics_aim

let check = Alcotest.check

let low = Aim.Label.system_low
let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

(* ------------------------------------------------------------------ *)
(* Bare-machine semantics: build one wired segment holding code and
   data and single-step it. *)

let bare_machine words =
  let config = { Hw.Hw_config.legacy_multics with Hw.Hw_config.memory_frames = 16 } in
  let machine = Hw.Machine.create config in
  let mem = machine.Hw.Machine.mem in
  (* Page table at 100, one page in frame 4; SDW array at 0; segment 2. *)
  Hw.Ptw.write mem 100 (Hw.Ptw.in_core ~frame:4);
  Hw.Sdw.write_at mem (2 * Hw.Sdw.words)
    (Hw.Sdw.make ~page_table:100 ~length:1 ~read:true ~write:true ~execute:true
       ~r1:7 ~r2:7 ~r3:7);
  List.iteri (fun i w -> Hw.Phys_mem.write mem (Hw.Addr.frame_base 4 + i) w) words;
  let cpu = machine.Hw.Machine.cpus.(0) in
  Hw.Cpu.load_user_dbr cpu (Some { Hw.Cpu.base = 0; n_segments = 4 });
  (config, mem, cpu)

let run_to_halt config mem cpu state =
  let rec loop n =
    if n > 1000 then Alcotest.fail "runaway program"
    else
      match Hw.Isa.step config mem cpu state with
      | Hw.Isa.Ok _ -> loop (n + 1)
      | Hw.Isa.Halt _ -> ()
      | Hw.Isa.Fault f -> Alcotest.failf "fault: %s" (Hw.Fault.to_string f)
      | Hw.Isa.Illegal msg -> Alcotest.failf "illegal: %s" msg
  in
  loop 0

let test_isa_arithmetic () =
  (* data at words 20..23; code at 0: acc := d20 + d21 - d22 -> d23 *)
  let code =
    Hw.Isa.assemble
      [ (Hw.Isa.LDA, 2, 20); (Hw.Isa.ADD, 2, 21); (Hw.Isa.SUB, 2, 22);
        (Hw.Isa.STA, 2, 23); (Hw.Isa.HLT, 0, 0) ]
  in
  let image = code @ [ 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0;
                       100; 42; 30; 0 ] in
  (* words: 0-4 code, 5-19 zeros, 20=100 21=42 22=30 23=0 *)
  let config, mem, cpu = bare_machine image in
  let state = Hw.Isa.init ~segno:2 ~entry:0 in
  run_to_halt config mem cpu state;
  check Alcotest.int "100+42-30" 112 (Hw.Phys_mem.read mem (Hw.Addr.frame_base 4 + 23));
  check Alcotest.int "five instructions" 5 state.Hw.Isa.steps

let test_isa_loop () =
  (* counter := 5 (LDI); loop: AOS d30; LDA counter; SUB one; STA; TNZ *)
  let code =
    Hw.Isa.assemble
      [ (Hw.Isa.LDI, 0, 5); (Hw.Isa.STA, 2, 31);  (* counter at 31 *)
        (* loop body at 2: *)
        (Hw.Isa.AOS, 2, 30); (Hw.Isa.LDA, 2, 31); (Hw.Isa.SUB, 2, 32);
        (Hw.Isa.STA, 2, 31); (Hw.Isa.TNZ, 2, 2); (Hw.Isa.HLT, 0, 0) ]
  in
  let image =
    code
    @ List.init 22 (fun _ -> 0)  (* words 8..29 *)
    @ [ 0; 0; 1 ]  (* 30: sum; 31: counter; 32: constant one *)
  in
  let config, mem, cpu = bare_machine image in
  let state = Hw.Isa.init ~segno:2 ~entry:0 in
  run_to_halt config mem cpu state;
  check Alcotest.int "looped five times" 5
    (Hw.Phys_mem.read mem (Hw.Addr.frame_base 4 + 30))

let test_isa_illegal_opcode () =
  let config, mem, cpu = bare_machine [ Hw.Word.insert 0 ~pos:30 ~len:6 33 ] in
  let state = Hw.Isa.init ~segno:2 ~entry:0 in
  match Hw.Isa.step config mem cpu state with
  | Hw.Isa.Illegal msg ->
      check Alcotest.bool "names the opcode" true
        (Astring.String.is_infix ~affix:"33" msg)
  | _ -> Alcotest.fail "expected illegal"

let test_isa_faults_surface () =
  let config, mem, cpu = bare_machine (Hw.Isa.assemble [ (Hw.Isa.LDA, 3, 0) ]) in
  let state = Hw.Isa.init ~segno:2 ~entry:0 in
  match Hw.Isa.step config mem cpu state with
  | Hw.Isa.Fault (Hw.Fault.Missing_segment { segno = 3 }) -> ()
  | _ -> Alcotest.fail "operand in a missing segment must fault"

(* ------------------------------------------------------------------ *)
(* End to end: a user process executes code stored in a file, with the
   kernel demand-paging both the code and the data. *)

let test_stored_program_end_to_end () =
  let k = K.Kernel.boot K.Kernel.small_config in
  K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
  K.Kernel.create_file k ~path:">home>data" ~acl:open_acl ~label:low;
  K.Kernel.create_file k ~path:">home>summer" ~acl:open_acl ~label:low;
  (* The process will initiate data first (segno 64) then code (65):
     segment numbers are assigned in initiation order from the split. *)
  let data_segno = 64 in
  let program =
    Hw.Isa.assemble
      [ (Hw.Isa.LDI, 0, 0);
        (Hw.Isa.ADD, data_segno, 0); (Hw.Isa.ADD, data_segno, 1);
        (Hw.Isa.ADD, data_segno, 2); (Hw.Isa.ADD, data_segno, 3);
        (Hw.Isa.ADD, data_segno, 4);
        (Hw.Isa.STA, data_segno, 10);
        (Hw.Isa.HLT, 0, 0) ]
  in
  K.Kernel.load_program k ~path:">home>summer" program;
  (* Seed the data: 1..5 in words 0..4 (page 0) — done by a setup
     process writing through the normal path would clobber offsets, so
     the administrator seeds it directly. *)
  let seed path values =
    let target =
      match
        K.Name_space.initiate (K.Kernel.name_space k)
          ~subject:K.Kernel.root_subject ~ring:1 ~path
      with
      | Ok target -> target
      | Error _ -> Alcotest.fail "initiate"
    in
    let slot =
      match
        K.Segment.activate (K.Kernel.segment k) ~caller:"test"
          ~uid:target.K.Directory.t_uid ~cell:target.K.Directory.t_cell
      with
      | Ok slot -> slot
      | Error _ -> Alcotest.fail "activate"
    in
    List.iteri
      (fun i v ->
        match
          K.Segment.write_word (K.Kernel.segment k) ~caller:"test" ~slot
            ~pageno:0 ~offset:i v
        with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "seed write")
      values;
    (target, slot)
  in
  let data_target, _ = seed ">home>data" [ 1; 2; 3; 4; 5 ] in
  (* Force everything out of the AST and memory so execution pages it
     all back in through faults. *)
  List.iter
    (fun slot -> K.Segment.deactivate (K.Kernel.segment k) ~caller:"test" ~slot)
    (K.Segment.active_slots (K.Kernel.segment k));
  let runner =
    [| K.Workload.Initiate { path = ">home>data"; reg = 0 };
       K.Workload.Initiate { path = ">home>summer"; reg = 1 };
       K.Workload.Execute { seg_reg = 1; entry = 0 };
       K.Workload.Terminate |]
  in
  let pid = K.Kernel.spawn k ~pname:"summer" runner in
  check Alcotest.bool "completes" true (K.Kernel.run_to_completion k);
  let p = K.User_process.proc (K.Kernel.user_process k) pid in
  (match p.K.User_process.pstate with
  | K.User_process.P_done -> ()
  | K.User_process.P_failed m -> Alcotest.failf "program failed: %s" m
  | _ -> Alcotest.fail "stuck");
  (* The code really was demand-paged. *)
  check Alcotest.bool "page reads happened" true
    (K.Page_frame.page_reads (K.Kernel.page_frame k) > 0);
  (* And the sum landed in the data segment. *)
  let slot =
    match
      K.Segment.activate (K.Kernel.segment k) ~caller:"test"
        ~uid:data_target.K.Directory.t_uid ~cell:data_target.K.Directory.t_cell
    with
    | Ok slot -> slot
    | Error _ -> Alcotest.fail "re-activate data"
  in
  match
    K.Segment.read_word (K.Kernel.segment k) ~caller:"test" ~slot ~pageno:0
      ~offset:10
  with
  | Ok sum -> check Alcotest.int "1+2+3+4+5" 15 sum
  | Error _ -> Alcotest.fail "read sum"

let prop_encode_fields =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"isa encode preserves fields" ~count:200
       QCheck.(pair (int_bound 511) (int_bound ((1 lsl 18) - 1)))
       (fun (segno, wordno) ->
         let w = Hw.Isa.encode Hw.Isa.LDA ~segno ~wordno () in
         Hw.Word.extract w ~pos:21 ~len:9 = segno
         && Hw.Word.extract w ~pos:0 ~len:18 = wordno
         && Hw.Word.extract w ~pos:30 ~len:6 = 1))

let test_legacy_refuses_execute () =
  let module L = Multics_legacy in
  let s = L.Old_supervisor.boot L.Old_supervisor.small_config in
  L.Old_supervisor.mkdir s ~path:">home" ~acl:open_acl;
  let pid =
    L.Old_supervisor.spawn s ~pname:"p"
      [| K.Workload.Execute { seg_reg = 0; entry = 0 }; K.Workload.Terminate |]
  in
  assert (L.Old_supervisor.run_to_completion s);
  match L.Old_supervisor.proc_state s pid with
  | L.Old_types.O_failed _ -> ()
  | _ -> Alcotest.fail "legacy model must refuse machine code cleanly"

let tests =
  [ Alcotest.test_case "isa arithmetic" `Quick test_isa_arithmetic;
    prop_encode_fields;
    Alcotest.test_case "legacy refuses execute" `Quick
      test_legacy_refuses_execute;
    Alcotest.test_case "isa loop" `Quick test_isa_loop;
    Alcotest.test_case "isa illegal opcode" `Quick test_isa_illegal_opcode;
    Alcotest.test_case "isa faults surface" `Quick test_isa_faults_surface;
    Alcotest.test_case "stored program end to end" `Quick
      test_stored_program_end_to_end ]
