(* Persistence across system incarnations: shutdown writes everything
   to the packs; a rebooted kernel finds the same hierarchy, data, ACLs,
   labels and quota. *)

module K = Multics_kernel
module Hw = Multics_hw
module Aim = Multics_aim

let check = Alcotest.check

let low = Aim.Label.system_low
let secret = Aim.Label.make Aim.Level.secret Aim.Compartment.empty
let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

let build_world () =
  let k = K.Kernel.boot K.Kernel.small_config in
  K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
  K.Kernel.mkdir k ~path:">home>alice"
    ~acl:[ K.Acl.entry "alice" K.Acl.rwe; K.Acl.entry "root" K.Acl.rwe ]
    ~label:low;
  K.Kernel.set_quota k ~path:">home>alice" ~limit:16;
  K.Kernel.create_file k ~path:">home>alice>notes" ~acl:open_acl ~label:low;
  K.Kernel.mkdir k ~path:">sigint" ~acl:open_acl ~label:secret;
  K.Kernel.create_file k ~path:">sigint>report" ~acl:open_acl ~label:secret;
  (* Put real data in alice's notes. *)
  let writer =
    K.Workload.concat
      [ [| K.Workload.Initiate { path = ">home>alice>notes"; reg = 0 } |];
        K.Workload.sequential_write ~seg_reg:0 ~pages:3 ]
  in
  ignore
    (K.Kernel.spawn k
       ~principal:{ K.Acl.user = "alice"; project = "proj" }
       ~pname:"alice" writer);
  assert (K.Kernel.run_to_completion k);
  k

let reboot k =
  K.Kernel.shutdown k;
  K.Kernel.reboot K.Kernel.small_config ~from:k

let test_hierarchy_survives () =
  let k2 = reboot (build_world ()) in
  let subject = K.Kernel.root_subject in
  List.iter
    (fun path ->
      match
        K.Name_space.initiate (K.Kernel.name_space k2) ~subject ~ring:1 ~path
      with
      | Ok _ -> ()
      | Error _ -> Alcotest.failf "%s lost across reboot" path)
    [ ">home>alice>notes"; ">sigint>report" ]

let test_quota_survives () =
  let k2 = reboot (build_world ()) in
  match K.Kernel.quota_usage k2 ~path:">home>alice" with
  | Some (used, limit) ->
      check Alcotest.int "limit survives" 16 limit;
      (* 3 written pages of notes (plus any directory page of alice's
         own is charged to the parent regime). *)
      check Alcotest.int "count survives" 3 used
  | None -> Alcotest.fail "quota cell lost"

let test_data_survives () =
  let k2 = reboot (build_world ()) in
  (* A second-incarnation process reads back what the first wrote; a
     read of a written page succeeds without failing the process. *)
  let reader =
    K.Workload.concat
      [ [| K.Workload.Initiate { path = ">home>alice>notes"; reg = 0 } |];
        K.Workload.sequential_read ~seg_reg:0 ~pages:3 ]
  in
  let pid =
    K.Kernel.spawn k2
      ~principal:{ K.Acl.user = "alice"; project = "proj" }
      ~pname:"alice2" reader
  in
  assert (K.Kernel.run_to_completion k2);
  let p = K.User_process.proc (K.Kernel.user_process k2) pid in
  (match p.K.User_process.pstate with
  | K.User_process.P_done -> ()
  | _ -> Alcotest.fail "reader must complete");
  (* And the words really are the old incarnation's: check directly. *)
  let target =
    match
      K.Name_space.initiate (K.Kernel.name_space k2)
        ~subject:K.Kernel.root_subject ~ring:1 ~path:">home>alice>notes"
    with
    | Ok target -> target
    | Error _ -> Alcotest.fail "initiate"
  in
  let sm = K.Kernel.segment k2 in
  let slot =
    match
      K.Segment.activate sm ~caller:"test" ~uid:target.K.Directory.t_uid
        ~cell:target.K.Directory.t_cell
    with
    | Ok s -> s
    | Error _ -> Alcotest.fail "activate"
  in
  match K.Segment.read_word sm ~caller:"test" ~slot ~pageno:1 ~offset:0 with
  | Ok w -> check Alcotest.bool "old incarnation's data" true (w <> 0)
  | Error _ -> Alcotest.fail "read"

let test_security_survives () =
  let k2 = reboot (build_world ()) in
  (* ACLs: bob still cannot use alice's directory. *)
  let bob =
    { K.Directory.s_principal = { K.Acl.user = "bob"; project = "proj" };
      s_label = low; s_trusted = false }
  in
  (match
     K.Name_space.initiate (K.Kernel.name_space k2) ~subject:bob ~ring:5
       ~path:">home>alice>notes"
   with
  | Ok target ->
      (* alice's dir is unreadable to bob, but the file's own ACL is
         open: access is determined entirely by the target ACL. *)
      check Alcotest.bool "target acl grants read" true
        target.K.Directory.t_mode.K.Acl.read
  | Error _ -> Alcotest.fail "resolution through unreadable dir works");
  (* AIM labels: the low subject still cannot read the secret report. *)
  match
    K.Name_space.initiate (K.Kernel.name_space k2) ~subject:bob ~ring:5
      ~path:">sigint>report"
  with
  | Error `No_access -> ()
  | Error `Bad_path -> Alcotest.fail "path resolution broke"
  | Ok target ->
      check Alcotest.bool "read still denied up" false
        target.K.Directory.t_mode.K.Acl.read

let test_new_work_after_reboot () =
  let k2 = reboot (build_world ()) in
  (* The new incarnation creates fresh files with fresh uids and runs
     normally; invariants hold. *)
  let prog =
    K.Workload.concat
      [ [| K.Workload.Create_file { dir = ">home"; name = "second_era" };
           K.Workload.Initiate { path = ">home>second_era"; reg = 0 } |];
        K.Workload.sequential_write ~seg_reg:0 ~pages:2 ]
  in
  ignore (K.Kernel.spawn k2 ~pname:"w" prog);
  check Alcotest.bool "completes" true (K.Kernel.run_to_completion k2);
  check Alcotest.int "invariants clean" 0
    (List.length (K.Invariants.check k2));
  check Alcotest.int "salvager clean" 0 (List.length (K.Salvager.scan k2))

let test_double_reboot () =
  let k2 = reboot (build_world ()) in
  let k3 = reboot k2 in
  match
    K.Name_space.initiate (K.Kernel.name_space k3)
      ~subject:K.Kernel.root_subject ~ring:1 ~path:">home>alice>notes"
  with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "second reboot lost the hierarchy"

let test_shutdown_requires_quiescence () =
  let k = K.Kernel.boot K.Kernel.small_config in
  K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
  ignore
    (K.Kernel.spawn k ~pname:"running"
       (K.Workload.compute_bound ~steps:50 ~step_ns:1000));
  Alcotest.check_raises "refuses"
    (Failure "Kernel.shutdown: processes still running") (fun () ->
      K.Kernel.shutdown k)

let tests =
  [ Alcotest.test_case "hierarchy survives" `Quick test_hierarchy_survives;
    Alcotest.test_case "quota survives" `Quick test_quota_survives;
    Alcotest.test_case "data survives" `Quick test_data_survives;
    Alcotest.test_case "security survives" `Quick test_security_survives;
    Alcotest.test_case "new work after reboot" `Quick
      test_new_work_after_reboot;
    Alcotest.test_case "double reboot" `Quick test_double_reboot;
    Alcotest.test_case "shutdown requires quiescence" `Quick
      test_shutdown_requires_quiescence ]
