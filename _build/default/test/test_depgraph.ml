(* Tests for the dependency-graph library and the paper's figures. *)

module Dg = Multics_depgraph

let check = Alcotest.check
let qcheck t = QCheck_alcotest.to_alcotest t

let test_add_edge () =
  let g = Dg.Graph.create () in
  Dg.Graph.add_edge g ~from:"a" ~to_:"b" Dg.Dep_kind.Component;
  Dg.Graph.add_edge g ~from:"a" ~to_:"b" Dg.Dep_kind.Map;
  Dg.Graph.add_edge g ~from:"a" ~to_:"b" Dg.Dep_kind.Map;
  check Alcotest.int "nodes" 2 (Dg.Graph.n_nodes g);
  check Alcotest.int "edges deduped" 1 (Dg.Graph.n_edges g);
  check Alcotest.int "kinds accumulated" 2
    (List.length (Dg.Graph.kinds g ~from:"a" ~to_:"b"))

let test_self_edge_rejected () =
  let g = Dg.Graph.create () in
  Alcotest.check_raises "self edge"
    (Invalid_argument "Graph.add_edge: self-edge on a") (fun () ->
      Dg.Graph.add_edge g ~from:"a" ~to_:"a" Dg.Dep_kind.Component)

let test_scc_dag () =
  let g = Dg.Graph.create () in
  Dg.Graph.add_edge g ~from:"a" ~to_:"b" Dg.Dep_kind.Component;
  Dg.Graph.add_edge g ~from:"b" ~to_:"c" Dg.Dep_kind.Component;
  check Alcotest.bool "loop free" true (Dg.Graph.is_loop_free g);
  check Alcotest.int "three sccs" 3 (List.length (Dg.Graph.sccs g))

let test_scc_cycle () =
  let g = Dg.Graph.create () in
  Dg.Graph.add_edge g ~from:"a" ~to_:"b" Dg.Dep_kind.Component;
  Dg.Graph.add_edge g ~from:"b" ~to_:"c" Dg.Dep_kind.Component;
  Dg.Graph.add_edge g ~from:"c" ~to_:"a" Dg.Dep_kind.Component;
  Dg.Graph.add_edge g ~from:"c" ~to_:"d" Dg.Dep_kind.Component;
  check Alcotest.bool "not loop free" false (Dg.Graph.is_loop_free g);
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "cycle members"
    [ [ "a"; "b"; "c" ] ]
    (Dg.Graph.cycles g);
  check (Alcotest.option Alcotest.unit) "no layers" None
    (Option.map ignore (Dg.Graph.layers g))

let test_layers () =
  let g = Dg.Graph.create () in
  Dg.Graph.add_edge g ~from:"top" ~to_:"mid1" Dg.Dep_kind.Component;
  Dg.Graph.add_edge g ~from:"top" ~to_:"mid2" Dg.Dep_kind.Component;
  Dg.Graph.add_edge g ~from:"mid1" ~to_:"bottom" Dg.Dep_kind.Component;
  Dg.Graph.add_edge g ~from:"mid2" ~to_:"bottom" Dg.Dep_kind.Component;
  match Dg.Graph.layers g with
  | None -> Alcotest.fail "expected layers"
  | Some layers ->
      check
        (Alcotest.list (Alcotest.list Alcotest.string))
        "layering"
        [ [ "bottom" ]; [ "mid1"; "mid2" ]; [ "top" ] ]
        layers

(* Random DAG: edges only from higher to lower indices — must be
   loop-free and layerable; adding a back edge to any forward path
   introduces a cycle. *)
let prop_dag_loop_free =
  QCheck.Test.make ~name:"forward-only random graphs are loop-free" ~count:100
    QCheck.(list_of_size Gen.(0 -- 30) (pair (int_bound 9) (int_bound 9)))
    (fun pairs ->
      let g = Dg.Graph.create () in
      List.iter
        (fun (a, b) ->
          let hi = max a b and lo = min a b in
          if hi <> lo then
            Dg.Graph.add_edge g ~from:(Printf.sprintf "m%d" hi)
              ~to_:(Printf.sprintf "m%d" lo) Dg.Dep_kind.Component)
        pairs;
      Dg.Graph.is_loop_free g && Dg.Graph.layers g <> None)

let prop_cycle_detected =
  QCheck.Test.make ~name:"a planted cycle is always reported" ~count:100
    QCheck.(pair (int_range 2 8) (list_of_size Gen.(0 -- 20) (pair (int_bound 9) (int_bound 9))))
    (fun (cycle_len, noise) ->
      let g = Dg.Graph.create () in
      (* noise edges, forward only, among c10..c19 *)
      List.iter
        (fun (a, b) ->
          let hi = max a b and lo = min a b in
          if hi <> lo then
            Dg.Graph.add_edge g ~from:(Printf.sprintf "n%d" hi)
              ~to_:(Printf.sprintf "n%d" lo) Dg.Dep_kind.Component)
        noise;
      for i = 0 to cycle_len - 1 do
        Dg.Graph.add_edge g
          ~from:(Printf.sprintf "c%d" i)
          ~to_:(Printf.sprintf "c%d" ((i + 1) mod cycle_len))
          Dg.Dep_kind.Component
      done;
      match Dg.Graph.cycles g with
      | [ cycle ] -> List.length cycle = cycle_len
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* The paper's figures *)

let test_fig2 () =
  let g = Dg.Figures.fig2_superficial () in
  check Alcotest.int "six modules" 6 (Dg.Graph.n_nodes g);
  (* The one obvious loop: VM and processor multiplexing. *)
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "vm/process loop"
    [ [ "page_control"; "process_control"; "segment_control" ] ]
    (Dg.Graph.cycles g)

let test_fig3 () =
  let g = Dg.Figures.fig3_actual () in
  check Alcotest.bool "has loops" false (Dg.Graph.is_loop_free g);
  let cycles = Dg.Graph.cycles g in
  (* The subtle dependencies merge the middle of the system into one
     large strongly connected component. *)
  check Alcotest.int "one big scc" 1 (List.length cycles);
  let scc = List.hd cycles in
  List.iter
    (fun m ->
      check Alcotest.bool (m ^ " in scc") true (List.mem m scc))
    [ "directory_control"; "address_space_control"; "segment_control";
      "page_control"; "process_control" ];
  (* Figure 3 strictly extends Figure 2. *)
  let g2 = Dg.Figures.fig2_superficial () in
  List.iter
    (fun (from, to_, _) ->
      check Alcotest.bool
        (Printf.sprintf "edge %s->%s kept" from to_)
        true
        (Dg.Graph.mem_edge g ~from ~to_))
    (Dg.Graph.edges g2)

let test_fig4_loop_free () =
  let g = Dg.Figures.fig4_redesign () in
  check Alcotest.bool "loop free" true (Dg.Graph.is_loop_free g);
  check Alcotest.int "twelve managers" 12 (Dg.Graph.n_nodes g);
  (* Only proper dependency kinds appear in the redesign. *)
  List.iter
    (fun (from, to_, ks) ->
      List.iter
        (fun k ->
          check Alcotest.bool
            (Printf.sprintf "%s->%s kind %s proper" from to_
               (Dg.Dep_kind.to_string k))
            true (Dg.Dep_kind.proper k))
        ks)
    (Dg.Graph.edges g)

let test_fig4_blanket_rules () =
  let g = Dg.Figures.fig4_redesign () in
  (* Every module except the core segment manager depends on the core
     segment manager and on the virtual processor manager. *)
  List.iter
    (fun m ->
      if m <> "core_segment_manager" then begin
        check Alcotest.bool (m ^ " -> csm") true
          (Dg.Graph.mem_edge g ~from:m ~to_:"core_segment_manager");
        if m <> "virtual_processor_manager" then
          check Alcotest.bool (m ^ " -> vpm") true
            (List.mem Dg.Dep_kind.Interpreter
               (Dg.Graph.kinds g ~from:m ~to_:"virtual_processor_manager"))
      end)
    (Dg.Graph.nodes g);
  (* The core segment manager is the unique bottom. *)
  match Dg.Graph.layers g with
  | Some ([ "core_segment_manager" ] :: _) -> ()
  | _ -> Alcotest.fail "core segment manager must be the bottom layer"

let test_conformance () =
  let declared = Dg.Graph.create () in
  Dg.Graph.add_edge declared ~from:"seg" ~to_:"page" Dg.Dep_kind.Component;
  let c = Dg.Conformance.create ~declared in
  Dg.Conformance.record_call c ~from:"seg" ~to_:"page";
  Dg.Conformance.record_call c ~from:"seg" ~to_:"page";
  check Alcotest.bool "conforms" true (Dg.Conformance.conforms c);
  Dg.Conformance.record_call c ~from:"page" ~to_:"seg";
  check Alcotest.bool "violation found" false (Dg.Conformance.conforms c);
  match Dg.Conformance.violations c with
  | [ v ] ->
      check Alcotest.string "from" "page" v.Dg.Conformance.v_from;
      check Alcotest.string "to" "seg" v.Dg.Conformance.v_to;
      check Alcotest.int "count" 1 v.Dg.Conformance.v_count
  | _ -> Alcotest.fail "expected one violation"

let test_conformance_unexercised () =
  let declared = Dg.Graph.create () in
  Dg.Graph.add_edge declared ~from:"a" ~to_:"b" Dg.Dep_kind.Component;
  Dg.Graph.add_edge declared ~from:"a" ~to_:"c" Dg.Dep_kind.Address_space;
  let c = Dg.Conformance.create ~declared in
  (* Structural (address-space) edges are not expected as calls. *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "only callable edges reported"
    [ ("a", "b") ]
    (Dg.Conformance.unexercised c)

let test_render_layered () =
  let g = Dg.Figures.fig4_redesign () in
  let s = Dg.Render.to_string Dg.Render.layered g in
  check Alcotest.bool "mentions loop-free" true
    (Astring.String.is_infix ~affix:"loop-free: yes" s)

let test_render_cyclic () =
  let g = Dg.Figures.fig3_actual () in
  let s = Dg.Render.to_string Dg.Render.layered g in
  check Alcotest.bool "mentions loops" true
    (Astring.String.is_infix ~affix:"loop-free: NO" s)

let test_render_dot () =
  let g = Dg.Figures.fig2_superficial () in
  let s = Dg.Render.to_string Dg.Render.dot g in
  check Alcotest.bool "digraph" true (Astring.String.is_prefix ~affix:"digraph" s)

let tests =
  [ Alcotest.test_case "add edge" `Quick test_add_edge;
    Alcotest.test_case "self edge rejected" `Quick test_self_edge_rejected;
    Alcotest.test_case "scc dag" `Quick test_scc_dag;
    Alcotest.test_case "scc cycle" `Quick test_scc_cycle;
    Alcotest.test_case "layers" `Quick test_layers;
    qcheck prop_dag_loop_free;
    qcheck prop_cycle_detected;
    Alcotest.test_case "figure 2" `Quick test_fig2;
    Alcotest.test_case "figure 3" `Quick test_fig3;
    Alcotest.test_case "figure 4 loop free" `Quick test_fig4_loop_free;
    Alcotest.test_case "figure 4 blanket rules" `Quick test_fig4_blanket_rules;
    Alcotest.test_case "conformance" `Quick test_conformance;
    Alcotest.test_case "conformance unexercised" `Quick
      test_conformance_unexercised;
    Alcotest.test_case "render layered" `Quick test_render_layered;
    Alcotest.test_case "render cyclic" `Quick test_render_cyclic;
    Alcotest.test_case "render dot" `Quick test_render_dot ]
