(* Failure paths and edge cases: table limits, quota returns, bad
   paths, pack exhaustion, growth beyond the page table. *)

module K = Multics_kernel
module L = Multics_legacy
module Hw = Multics_hw
module Aim = Multics_aim

let check = Alcotest.check

let low = Aim.Label.system_low
let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

let boot_with_home () =
  let k = K.Kernel.boot K.Kernel.small_config in
  K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
  k

let activate_file k path =
  let target =
    match
      K.Name_space.initiate (K.Kernel.name_space k)
        ~subject:K.Kernel.root_subject ~ring:1 ~path
    with
    | Ok target -> target
    | Error _ -> Alcotest.fail ("initiate " ^ path)
  in
  match
    K.Segment.activate (K.Kernel.segment k) ~caller:"test"
      ~uid:target.K.Directory.t_uid ~cell:target.K.Directory.t_cell
  with
  | Ok slot -> (slot, target)
  | Error _ -> Alcotest.fail ("activate " ^ path)

(* Growth beyond the activated page table is a clean refusal. *)
let test_grow_beyond_page_table () =
  let k = boot_with_home () in
  K.Kernel.create_file k ~path:">home>f" ~acl:open_acl ~label:low;
  let slot, _ = activate_file k ">home>f" in
  let sm = K.Kernel.segment k in
  (match K.Segment.grow sm ~caller:"test" ~slot ~pageno:(K.Segment.pt_words sm) with
  | Error `No_space -> ()
  | _ -> Alcotest.fail "beyond-table grow must refuse");
  Alcotest.check_raises "negative page"
    (Invalid_argument "Segment.ptw_abs: page beyond table") (fun () ->
      ignore (K.Segment.ptw_abs sm ~slot ~pageno:(K.Segment.pt_words sm)))

(* Deleting a quota directory returns its remaining limit upstream. *)
let test_delete_quota_dir_returns_limit () =
  let k = boot_with_home () in
  K.Kernel.mkdir k ~path:">home>q" ~acl:open_acl ~label:low;
  K.Kernel.set_quota k ~path:">home>q" ~limit:20;
  let quota = K.Kernel.quota k in
  (* The root cell lost 20 of limit to q. *)
  let root_cell_limit () =
    match K.Quota_cell.registered quota with
    | (cell, _, limit) :: _ when cell = 0 -> limit
    | cells -> (
        match List.find_opt (fun (c, _, _) -> c = 0) cells with
        | Some (_, _, limit) -> limit
        | None -> Alcotest.fail "root cell missing")
  in
  let after_carve = root_cell_limit () in
  let dm = K.Kernel.directory k in
  let home_uid =
    match
      K.Directory.search dm ~caller:"test" ~subject:K.Kernel.root_subject
        ~dir_uid:(K.Directory.root_uid dm) ~name:"home"
    with
    | `Found uid -> uid
    | `No_entry -> Alcotest.fail "home"
  in
  (match
     K.Directory.delete_entry dm ~caller:"test" ~subject:K.Kernel.root_subject
       ~dir_uid:home_uid ~name:"q"
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "delete quota dir");
  check Alcotest.int "limit returned" (after_carve + 20) (root_cell_limit ())

(* clear_quota returns the carved limit too, and needs childlessness. *)
let test_clear_quota () =
  let k = boot_with_home () in
  K.Kernel.mkdir k ~path:">home>q" ~acl:open_acl ~label:low;
  K.Kernel.set_quota k ~path:">home>q" ~limit:12;
  let dm = K.Kernel.directory k in
  let home_uid =
    match
      K.Directory.search dm ~caller:"test" ~subject:K.Kernel.root_subject
        ~dir_uid:(K.Directory.root_uid dm) ~name:"home"
    with
    | `Found uid -> uid
    | `No_entry -> Alcotest.fail "home"
  in
  (match
     K.Directory.clear_quota dm ~caller:"test" ~subject:K.Kernel.root_subject
       ~dir_uid:home_uid ~name:"q"
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "clear quota on childless dir");
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "no longer a quota dir" None
    (K.Kernel.quota_usage k ~path:">home>q");
  (* With a child, designation is refused both ways. *)
  K.Kernel.mkdir k ~path:">home>q>kid" ~acl:open_acl ~label:low;
  match
    K.Directory.set_quota dm ~caller:"test" ~subject:K.Kernel.root_subject
      ~dir_uid:home_uid ~name:"q" ~limit:4
  with
  | Error `Has_children -> ()
  | _ -> Alcotest.fail "set_quota with child must refuse"

(* All packs full: growth fails cleanly after attempting relocation. *)
let test_all_packs_full () =
  let config =
    { K.Kernel.small_config with K.Kernel.disk_packs = 2; records_per_pack = 6 }
  in
  let k = K.Kernel.boot config in
  K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
  let prog =
    K.Workload.concat
      [ [| K.Workload.Create_file { dir = ">home"; name = "a" };
           K.Workload.Initiate { path = ">home>a"; reg = 0 } |];
        K.Workload.sequential_write ~seg_reg:0 ~pages:12 ]
  in
  let pid = K.Kernel.spawn k ~pname:"filler" prog in
  ignore (K.Kernel.run_to_completion k);
  let p = K.User_process.proc (K.Kernel.user_process k) pid in
  (match p.K.User_process.pstate with
  | K.User_process.P_failed msg ->
      check Alcotest.bool "no-space message" true
        (Astring.String.is_infix ~affix:"space" msg)
  | _ -> Alcotest.fail "must fail when the disk is full");
  (* The failed growth left consistent accounting. *)
  check Alcotest.int "invariants hold" 0 (List.length (K.Invariants.check k))

let test_name_space_bad_paths () =
  let k = boot_with_home () in
  let ns = K.Kernel.name_space k in
  (match
     K.Name_space.resolve_parent ns ~subject:K.Kernel.root_subject ~ring:1
       ~path:">"
   with
  | Error `Bad_path -> ()
  | Ok _ -> Alcotest.fail "bare root has no parent/leaf");
  match
    K.Name_space.initiate ns ~subject:K.Kernel.root_subject ~ring:1 ~path:""
  with
  | Error (`Bad_path | `No_access) -> ()
  | Ok _ -> Alcotest.fail "empty path must not resolve"

(* Legacy AST exhaustion: tiny AST, deep pinned hierarchy. *)
let test_legacy_ast_exhaustion () =
  let config = { L.Old_supervisor.small_config with L.Old_supervisor.ast_slots = 6 } in
  let s = L.Old_supervisor.boot config in
  L.Old_supervisor.mkdir s ~path:">home" ~acl:open_acl;
  (* Build a chain deeper than the AST can hold at once: activating the
     leaf pins every superior directory. *)
  let path = Buffer.create 32 in
  Buffer.add_string path ">home";
  for i = 1 to 6 do
    Buffer.add_string path (Printf.sprintf ">d%d" i);
    L.Old_supervisor.mkdir s ~path:(Buffer.contents path) ~acl:open_acl
  done;
  L.Old_supervisor.create_file s
    ~path:(Buffer.contents path ^ ">leaf")
    ~acl:open_acl;
  let st = L.Old_supervisor.state s in
  let de =
    match
      L.Old_directory.resolve st
        ~principal:{ K.Acl.user = "root"; project = "sys" }
        ~path:(Buffer.contents path ^ ">leaf")
    with
    | Ok (de, _) -> de
    | Error _ -> Alcotest.fail "resolve"
  in
  (match L.Old_storage.activate st ~uid:de.L.Old_types.od_uid with
  | Error `No_slot -> ()
  | Ok _ ->
      Alcotest.fail
        "a 6-slot AST cannot hold an 8-deep pinned chain: the hierarchy \
         constraint must bite"
  | Error `Gone -> Alcotest.fail "segment exists");
  check Alcotest.bool "blocked deactivations recorded" true
    ((L.Old_supervisor.stats s).L.Old_types.st_deactivation_blocked > 0)

(* The new kernel holds the same chain with the same slot count: any
   unconnected segment, directories included, can be deactivated. *)
let test_new_kernel_handles_deep_chain () =
  let config = { K.Kernel.small_config with K.Kernel.ast_slots = 6 } in
  let k = K.Kernel.boot config in
  K.Kernel.mkdir k ~path:">home" ~acl:open_acl ~label:low;
  let path = Buffer.create 32 in
  Buffer.add_string path ">home";
  for i = 1 to 6 do
    Buffer.add_string path (Printf.sprintf ">d%d" i);
    K.Kernel.mkdir k ~path:(Buffer.contents path) ~acl:open_acl ~label:low
  done;
  K.Kernel.create_file k ~path:(Buffer.contents path ^ ">leaf") ~acl:open_acl
    ~label:low;
  let _slot, _ = activate_file k (Buffer.contents path ^ ">leaf") in
  check Alcotest.bool "deactivations happened to make room" true
    (K.Segment.deactivations (K.Kernel.segment k) > 0)

let test_census_growth_factor () =
  check Alcotest.bool "almost doubled" true
    (Multics_census.Inventory.growth_factor_1973_to_1976 > 1.5)

let test_disk_io_count () =
  let disk = Hw.Disk.create ~packs:1 ~records_per_pack:4 ~read_latency_ns:10 in
  let r = Hw.Disk.alloc_record disk ~pack:0 in
  ignore (Hw.Disk.read_record disk ~pack:0 ~record:r);
  Hw.Disk.write_record disk ~pack:0 ~record:r (Array.make Hw.Addr.page_size 0);
  check Alcotest.int "two transfers" 2 (Hw.Disk.io_count disk)

let tests =
  [ Alcotest.test_case "grow beyond page table" `Quick
      test_grow_beyond_page_table;
    Alcotest.test_case "delete quota dir returns limit" `Quick
      test_delete_quota_dir_returns_limit;
    Alcotest.test_case "clear quota" `Quick test_clear_quota;
    Alcotest.test_case "all packs full" `Quick test_all_packs_full;
    Alcotest.test_case "name space bad paths" `Quick test_name_space_bad_paths;
    Alcotest.test_case "legacy ast exhaustion" `Quick
      test_legacy_ast_exhaustion;
    Alcotest.test_case "new kernel deep chain" `Quick
      test_new_kernel_handles_deep_chain;
    Alcotest.test_case "census growth factor" `Quick test_census_growth_factor;
    Alcotest.test_case "disk io count" `Quick test_disk_io_count ]
