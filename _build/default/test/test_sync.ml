(* Tests for eventcounts, sequencers, locks and message queues. *)

module Sync = Multics_sync

let check = Alcotest.check
let qcheck t = QCheck_alcotest.to_alcotest t

let test_eventcount_basic () =
  let ec = Sync.Eventcount.create ~name:"t" () in
  check Alcotest.int "initial" 0 (Sync.Eventcount.read ec);
  Sync.Eventcount.advance ec;
  Sync.Eventcount.advance ec;
  check Alcotest.int "after two" 2 (Sync.Eventcount.read ec)

let test_eventcount_await_ready () =
  let ec = Sync.Eventcount.create () in
  Sync.Eventcount.advance ec;
  check Alcotest.bool "already reached" true
    (Sync.Eventcount.await ec ~value:1 ~notify:(fun () -> Alcotest.fail "no cb"))

let test_eventcount_await_fires () =
  let ec = Sync.Eventcount.create () in
  let fired = ref [] in
  let wait tag v =
    ignore (Sync.Eventcount.await ec ~value:v ~notify:(fun () ->
        fired := tag :: !fired))
  in
  wait "a" 1;
  wait "b" 2;
  wait "c" 1;
  check Alcotest.int "waiters" 3 (Sync.Eventcount.waiters ec);
  Sync.Eventcount.advance ec;
  check (Alcotest.list Alcotest.string) "threshold 1, in order" [ "a"; "c" ]
    (List.rev !fired);
  Sync.Eventcount.advance ec;
  check (Alcotest.list Alcotest.string) "then b" [ "a"; "c"; "b" ]
    (List.rev !fired);
  check Alcotest.int "no waiters left" 0 (Sync.Eventcount.waiters ec)

(* The broadcast property: the advancer does not name the waiters; all
   waiters at or below the new value wake on one advance. *)
let prop_eventcount_broadcast =
  QCheck.Test.make ~name:"eventcount wakes exactly ripe waiters" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 20) (int_range 1 10)) (int_range 0 10))
    (fun (thresholds, advances) ->
      let ec = Sync.Eventcount.create () in
      let woken = ref 0 in
      List.iter
        (fun v ->
          ignore (Sync.Eventcount.await ec ~value:v ~notify:(fun () -> incr woken)))
        thresholds;
      for _ = 1 to advances do Sync.Eventcount.advance ec done;
      let expected = List.length (List.filter (fun v -> v <= advances) thresholds) in
      !woken = expected
      && Sync.Eventcount.waiters ec = List.length thresholds - expected)

let test_sequencer () =
  let s = Sync.Sequencer.create () in
  check Alcotest.int "first" 1 (Sync.Sequencer.ticket s);
  check Alcotest.int "second" 2 (Sync.Sequencer.ticket s);
  check Alcotest.int "issued" 2 (Sync.Sequencer.issued s)

(* Ticket + eventcount mutual exclusion: tickets admit strictly in order. *)
let test_sequencer_eventcount_mutex () =
  let s = Sync.Sequencer.create () in
  let ec = Sync.Eventcount.create () in
  let order = ref [] in
  let enter tag =
    let ticket = Sync.Sequencer.ticket s in
    let run () = order := tag :: !order; Sync.Eventcount.advance ec in
    if Sync.Eventcount.await ec ~value:(ticket - 1) ~notify:run then run ()
  in
  (* First customer's ticket is 1; awaits value 0 which is ready. *)
  enter "p1";
  enter "p2";
  enter "p3";
  check (Alcotest.list Alcotest.string) "fifo" [ "p1"; "p2"; "p3" ]
    (List.rev !order)

let test_lock_mutual_exclusion () =
  let l = Sync.Lock.create ~name:"ptl" () in
  check Alcotest.bool "first" true (Sync.Lock.try_acquire l ~owner:"a");
  check Alcotest.bool "second refused" false (Sync.Lock.try_acquire l ~owner:"b");
  check (Alcotest.option Alcotest.string) "holder" (Some "a")
    (Sync.Lock.holder l);
  Sync.Lock.release l;
  check (Alcotest.option Alcotest.string) "free" None (Sync.Lock.holder l)

let test_lock_queue_fifo () =
  let l = Sync.Lock.create () in
  let log = ref [] in
  assert (Sync.Lock.try_acquire l ~owner:"a");
  let wait tag =
    ignore
      (Sync.Lock.acquire_or_wait l ~owner:tag ~notify:(fun () ->
           log := tag :: !log))
  in
  wait "b";
  wait "c";
  check Alcotest.int "contentions" 2 (Sync.Lock.contentions l);
  Sync.Lock.release l;
  check (Alcotest.option Alcotest.string) "b now holds" (Some "b")
    (Sync.Lock.holder l);
  Sync.Lock.release l;
  Sync.Lock.release l;
  check (Alcotest.list Alcotest.string) "fifo handoff" [ "b"; "c" ] (List.rev !log);
  check (Alcotest.option Alcotest.string) "free at end" None (Sync.Lock.holder l)

let test_lock_release_unheld () =
  let l = Sync.Lock.create ~name:"x" () in
  Alcotest.check_raises "unheld" (Invalid_argument "Lock.release: x not held")
    (fun () -> Sync.Lock.release l)

let test_msg_queue_fifo () =
  let q = Sync.Msg_queue.create ~capacity:2 () in
  check Alcotest.bool "send 1" true (Result.is_ok (Sync.Msg_queue.send q 1));
  check Alcotest.bool "send 2" true (Result.is_ok (Sync.Msg_queue.send q 2));
  check Alcotest.bool "full" true (Result.is_error (Sync.Msg_queue.send q 3));
  check Alcotest.int "drops" 1 (Sync.Msg_queue.drops q);
  check (Alcotest.option Alcotest.int) "recv 1" (Some 1) (Sync.Msg_queue.receive q);
  check (Alcotest.option Alcotest.int) "recv 2" (Some 2) (Sync.Msg_queue.receive q);
  check (Alcotest.option Alcotest.int) "empty" None (Sync.Msg_queue.receive q)

let test_msg_queue_eventcount () =
  let q = Sync.Msg_queue.create ~capacity:4 () in
  let woken = ref false in
  let consumed = Sync.Msg_queue.consumed q in
  ignore
    (Sync.Eventcount.await (Sync.Msg_queue.items q) ~value:(consumed + 1)
       ~notify:(fun () -> woken := true));
  check Alcotest.bool "not yet" false !woken;
  ignore (Sync.Msg_queue.send q "wakeup");
  check Alcotest.bool "woken by send" true !woken

let prop_msg_queue_conservation =
  QCheck.Test.make ~name:"msg queue conserves messages" ~count:200
    QCheck.(list (option (int_bound 100)))
    (fun ops ->
      (* Some op = send that value; None = receive. *)
      let q = Sync.Msg_queue.create ~capacity:8 () in
      let sent = ref [] and received = ref [] in
      List.iter
        (fun op ->
          match op with
          | Some v -> (
              match Sync.Msg_queue.send q v with
              | Ok () -> sent := v :: !sent
              | Error `Full -> ())
          | None -> (
              match Sync.Msg_queue.receive q with
              | Some v -> received := v :: !received
              | None -> ()))
        ops;
      let rec drain () =
        match Sync.Msg_queue.receive q with
        | Some v -> received := v :: !received; drain ()
        | None -> ()
      in
      drain ();
      List.rev !sent = List.rev !received)

let tests =
  [ Alcotest.test_case "eventcount basic" `Quick test_eventcount_basic;
    Alcotest.test_case "eventcount await ready" `Quick test_eventcount_await_ready;
    Alcotest.test_case "eventcount await fires" `Quick test_eventcount_await_fires;
    qcheck prop_eventcount_broadcast;
    Alcotest.test_case "sequencer" `Quick test_sequencer;
    Alcotest.test_case "sequencer+eventcount mutex" `Quick
      test_sequencer_eventcount_mutex;
    Alcotest.test_case "lock mutual exclusion" `Quick test_lock_mutual_exclusion;
    Alcotest.test_case "lock queue fifo" `Quick test_lock_queue_fifo;
    Alcotest.test_case "lock release unheld" `Quick test_lock_release_unheld;
    Alcotest.test_case "msg queue fifo" `Quick test_msg_queue_fifo;
    Alcotest.test_case "msg queue eventcount" `Quick test_msg_queue_eventcount;
    qcheck prop_msg_queue_conservation ]
