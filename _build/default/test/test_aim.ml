(* Tests for the Access Isolation Mechanism: labels, lattice laws,
   Bell-LaPadula flow rules, audit trail. *)

module Aim = Multics_aim

let check = Alcotest.check
let qcheck t = QCheck_alcotest.to_alcotest t

let label level comps =
  Aim.Label.make (Aim.Level.of_int level) (Aim.Compartment.of_list comps)

let label_gen =
  QCheck.Gen.(
    let* level = int_bound 7 in
    let* comps = list_size (0 -- 4) (int_bound 17) in
    return (label level comps))

let label_arb =
  QCheck.make ~print:(fun l -> Aim.Label.to_string l) label_gen

let test_dominates () =
  let unclass = label 0 [] in
  let secret_nato = label 2 [ 1 ] in
  let secret = label 2 [] in
  check Alcotest.bool "secret+nato dominates unclass" true
    (Aim.Label.dominates secret_nato unclass);
  check Alcotest.bool "secret does not dominate secret+nato" false
    (Aim.Label.dominates secret secret_nato);
  check Alcotest.bool "incomparable" false
    (Aim.Label.comparable (label 1 [ 2 ]) (label 2 [ 3 ]))

let test_encode_roundtrip () =
  let l = label 3 [ 0; 5; 17 ] in
  check Alcotest.bool "roundtrip" true
    (Aim.Label.equal l (Aim.Label.decode (Aim.Label.encode l)))

let prop_encode_roundtrip =
  QCheck.Test.make ~name:"label encode/decode roundtrip" ~count:300 label_arb
    (fun l -> Aim.Label.equal l (Aim.Label.decode (Aim.Label.encode l)))

let prop_dominates_partial_order =
  QCheck.Test.make ~name:"dominates is a partial order" ~count:300
    QCheck.(triple label_arb label_arb label_arb)
    (fun (a, b, c) ->
      Aim.Label.dominates a a
      && ((not (Aim.Label.dominates a b && Aim.Label.dominates b a))
          || Aim.Label.equal a b)
      && ((not (Aim.Label.dominates a b && Aim.Label.dominates b c))
          || Aim.Label.dominates a c))

let prop_lub_is_least_upper_bound =
  QCheck.Test.make ~name:"lub bounds both and is least" ~count:300
    QCheck.(triple label_arb label_arb label_arb)
    (fun (a, b, c) ->
      let j = Aim.Label.lub a b in
      Aim.Label.dominates j a && Aim.Label.dominates j b
      && ((not (Aim.Label.dominates c a && Aim.Label.dominates c b))
          || Aim.Label.dominates c j))

let prop_glb_is_greatest_lower_bound =
  QCheck.Test.make ~name:"glb bounded by both and greatest" ~count:300
    QCheck.(triple label_arb label_arb label_arb)
    (fun (a, b, c) ->
      let m = Aim.Label.glb a b in
      Aim.Label.dominates a m && Aim.Label.dominates b m
      && ((not (Aim.Label.dominates a c && Aim.Label.dominates b c))
          || Aim.Label.dominates m c))

let prop_lattice_absorption =
  QCheck.Test.make ~name:"lattice absorption laws" ~count:300
    QCheck.(pair label_arb label_arb)
    (fun (a, b) ->
      Aim.Label.equal a (Aim.Label.lub a (Aim.Label.glb a b))
      && Aim.Label.equal a (Aim.Label.glb a (Aim.Label.lub a b)))

let subject ?(trusted = false) name l =
  { Aim.Flow.subject_name = name; label = l; trusted }

let test_simple_security () =
  let s = subject "alice" (label 2 [ 1 ]) in
  check Alcotest.bool "read down ok" true
    (Aim.Flow.can_observe s ~object_label:(label 1 [ 1 ]) = Aim.Flow.Granted);
  check Alcotest.bool "read up denied" true
    (Aim.Flow.can_observe s ~object_label:(label 3 []) = Aim.Flow.Denied);
  check Alcotest.bool "read across denied" true
    (Aim.Flow.can_observe s ~object_label:(label 2 [ 2 ]) = Aim.Flow.Denied)

let test_star_property () =
  let s = subject "alice" (label 2 []) in
  check Alcotest.bool "write up ok" true
    (Aim.Flow.can_modify s ~object_label:(label 3 []) = Aim.Flow.Granted);
  check Alcotest.bool "write down denied" true
    (Aim.Flow.can_modify s ~object_label:(label 1 []) = Aim.Flow.Denied);
  check Alcotest.bool "write at level ok" true
    (Aim.Flow.can_modify s ~object_label:(label 2 []) = Aim.Flow.Granted)

let test_trusted_override () =
  let s = subject ~trusted:true "answering_service" (label 3 []) in
  check Alcotest.bool "trusted write down" true
    (Aim.Flow.can_modify s ~object_label:(label 0 [])
     = Aim.Flow.Granted_trusted)

(* No flow both ways between incomparable labels: confinement. *)
let prop_no_two_way_flow =
  QCheck.Test.make ~name:"untrusted subject cannot read and write both ways"
    ~count:300
    QCheck.(pair label_arb label_arb)
    (fun (sl, ol) ->
      QCheck.assume (not (Aim.Label.equal sl ol));
      let s = subject "s" sl in
      let reads = Aim.Flow.can_observe s ~object_label:ol = Aim.Flow.Granted in
      let writes = Aim.Flow.can_modify s ~object_label:ol = Aim.Flow.Granted in
      not (reads && writes))

let test_audit_trail () =
  let audit = Aim.Audit.create () in
  let alice = subject "alice" (label 2 []) in
  let trusted = subject ~trusted:true "svc" (label 3 []) in
  let ok =
    Aim.Flow.check ~audit alice ~object_label:(label 1 []) ~object_name:"memo"
      `Observe
  in
  check Alcotest.bool "grant" true ok;
  let denied =
    Aim.Flow.check ~audit alice ~object_label:(label 3 []) ~object_name:"plans"
      `Observe
  in
  check Alcotest.bool "denied" false denied;
  let via_trust =
    Aim.Flow.check ~audit trusted ~object_label:(label 0 [])
      ~object_name:"motd" `Modify
  in
  check Alcotest.bool "override" true via_trust;
  check Alcotest.int "grants" 1 (Aim.Audit.grants audit);
  check Alcotest.int "denials" 1 (Aim.Audit.denials audit);
  check Alcotest.int "overrides" 1 (Aim.Audit.overrides audit);
  match Aim.Audit.events audit with
  | [ e1; e2 ] ->
      check Alcotest.string "first event outcome" "denied" e1.Aim.Audit.outcome;
      check Alcotest.string "second outcome" "trusted-override"
        e2.Aim.Audit.outcome
  | _ -> Alcotest.fail "expected two recorded events"

(* ------------------------------------------------------------------ *)
(* The executable MITRE model (the paper's box 4) *)

let mitre_fixture () =
  let m = Aim.Mitre.create () in
  Aim.Mitre.add_subject m ~name:"low_s" ~label:(label 0 []) ~trusted:false;
  Aim.Mitre.add_subject m ~name:"secret_s" ~label:(label 2 []) ~trusted:false;
  Aim.Mitre.add_subject m ~name:"trusted_s" ~label:(label 3 []) ~trusted:true;
  Aim.Mitre.add_object m ~name:"low_o" ~label:(label 0 []);
  Aim.Mitre.add_object m ~name:"secret_o" ~label:(label 2 []);
  m

let test_mitre_rules () =
  let m = mitre_fixture () in
  check Alcotest.bool "read down granted" true
    (Aim.Mitre.request m ~subject:"secret_s" ~object_:"low_o" Aim.Mitre.Observe
     = `Granted);
  check Alcotest.bool "read up refused" true
    (Aim.Mitre.request m ~subject:"low_s" ~object_:"secret_o" Aim.Mitre.Observe
     = `Refused);
  check Alcotest.bool "write up granted" true
    (Aim.Mitre.request m ~subject:"low_s" ~object_:"secret_o" Aim.Mitre.Modify
     = `Granted);
  check Alcotest.bool "write down refused" true
    (Aim.Mitre.request m ~subject:"secret_s" ~object_:"low_o" Aim.Mitre.Modify
     = `Refused);
  check Alcotest.bool "trusted write down" true
    (Aim.Mitre.request m ~subject:"trusted_s" ~object_:"low_o" Aim.Mitre.Modify
     = `Granted);
  check Alcotest.bool "state secure" true (Aim.Mitre.secure m);
  check Alcotest.int "no violations" 0 (List.length (Aim.Mitre.violations m))

(* The Basic Security Theorem for this rule set: any sequence of
   requests and releases from the empty state leaves the state secure. *)
let prop_basic_security_theorem =
  QCheck.Test.make ~name:"basic security theorem" ~count:300
    QCheck.(list_of_size Gen.(0 -- 40)
              (quad (int_bound 3) (int_bound 3) bool bool))
    (fun ops ->
      let m = Aim.Mitre.create () in
      let subjects = [| "s0"; "s1"; "s2"; "s3" |] in
      let objects = [| "o0"; "o1"; "o2"; "o3" |] in
      Array.iteri
        (fun i name ->
          Aim.Mitre.add_subject m ~name ~label:(label i [ i mod 3 ])
            ~trusted:false)
        subjects;
      Array.iteri
        (fun i name -> Aim.Mitre.add_object m ~name ~label:(label i [ i mod 2 ]))
        objects;
      List.for_all
        (fun (si, oi, is_modify, is_release) ->
          let access = if is_modify then Aim.Mitre.Modify else Aim.Mitre.Observe in
          if is_release then
            Aim.Mitre.release m ~subject:subjects.(si) ~object_:objects.(oi)
              access
          else
            ignore
              (Aim.Mitre.request m ~subject:subjects.(si) ~object_:objects.(oi)
                 access);
          Aim.Mitre.secure m)
        ops)

(* The kernel's Flow decisions agree with the specification point for
   point (for untrusted subjects; trusted ones are audited overrides). *)
let prop_flow_agrees_with_mitre =
  QCheck.Test.make ~name:"Flow implements the MITRE specification" ~count:300
    QCheck.(triple label_arb label_arb bool)
    (fun (sl, ol, is_modify) ->
      let m = Aim.Mitre.create () in
      Aim.Mitre.add_subject m ~name:"s" ~label:sl ~trusted:false;
      Aim.Mitre.add_object m ~name:"o" ~label:ol;
      let spec =
        Aim.Mitre.request m ~subject:"s" ~object_:"o"
          (if is_modify then Aim.Mitre.Modify else Aim.Mitre.Observe)
      in
      let s = subject "s" sl in
      let impl =
        if is_modify then Aim.Flow.can_modify s ~object_label:ol
        else Aim.Flow.can_observe s ~object_label:ol
      in
      (spec = `Granted) = (impl = Aim.Flow.Granted))

let test_level_bounds () =
  Alcotest.check_raises "level 8" (Invalid_argument "Level.of_int: levels are 0..7")
    (fun () -> ignore (Aim.Level.of_int 8))

let tests =
  [ Alcotest.test_case "dominates" `Quick test_dominates;
    Alcotest.test_case "encode roundtrip" `Quick test_encode_roundtrip;
    qcheck prop_encode_roundtrip;
    qcheck prop_dominates_partial_order;
    qcheck prop_lub_is_least_upper_bound;
    qcheck prop_glb_is_greatest_lower_bound;
    qcheck prop_lattice_absorption;
    Alcotest.test_case "simple security" `Quick test_simple_security;
    Alcotest.test_case "star property" `Quick test_star_property;
    Alcotest.test_case "trusted override" `Quick test_trusted_override;
    qcheck prop_no_two_way_flow;
    Alcotest.test_case "audit trail" `Quick test_audit_trail;
    Alcotest.test_case "mitre rules" `Quick test_mitre_rules;
    qcheck prop_basic_security_theorem;
    qcheck prop_flow_agrees_with_mitre;
    Alcotest.test_case "level bounds" `Quick test_level_bounds ]
