(* The grand integration test: a day in the life of the system.

   Users log in through the Answering Service at several clearances,
   work under quota on a memory-cramped machine while network traffic
   arrives, probes are refused, everything drains; then the system shuts
   down, the salvager finds nothing to repair, and the next incarnation
   carries on with yesterday's files. *)

module K = Multics_kernel
module S = Multics_services
module Hw = Multics_hw
module Dg = Multics_depgraph
module Aim = Multics_aim

let check = Alcotest.check

let low = Aim.Label.system_low
let secret = Aim.Label.make Aim.Level.secret Aim.Compartment.empty
let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

let test_full_day () =
  let config =
    { K.Kernel.default_config with
      K.Kernel.hw = Hw.Hw_config.with_frames Hw.Hw_config.kernel_multics 96;
      core_frames = 32; root_quota = 512 }
  in
  let k = K.Kernel.boot config in
  (* The administrator builds the world. *)
  K.Kernel.mkdir k ~path:">udd" ~acl:open_acl ~label:low;
  List.iter
    (fun user ->
      let home = ">udd>" ^ user in
      K.Kernel.mkdir k ~path:home
        ~acl:[ K.Acl.entry user K.Acl.rwe; K.Acl.entry "root" K.Acl.rwe ]
        ~label:low;
      K.Kernel.set_quota k ~path:home ~limit:24)
    [ "adams"; "blake"; "curie"; "darwin" ];
  K.Kernel.mkdir k ~path:">library" ~acl:open_acl ~label:low;
  K.Kernel.create_file k ~path:">library>manual" ~acl:open_acl ~label:low;
  K.Kernel.mkdir k ~path:">intel" ~acl:open_acl ~label:secret;
  K.Kernel.create_file k ~path:">intel>briefing" ~acl:open_acl ~label:secret;

  (* The Answering Service and the network come up. *)
  let svc =
    S.Answering_service.create ~kernel:k ~variant:S.Answering_service.Split
  in
  List.iter
    (fun (user, clearance) ->
      S.Answering_service.register_user svc ~user ~password:(user ^ "pw")
        ~clearance)
    [ ("adams", low); ("blake", low); ("curie", secret); ("darwin", low) ];
  let net = S.Network.create ~kernel:k ~variant:S.Network.Generic_demux in
  S.Network.attach_channel net ~net:S.Network.Arpanet ~channel:"mail_in";

  (* Sessions. *)
  let session user body =
    match
      S.Answering_service.login svc ~user ~password:(user ^ "pw")
        ~program:(K.Workload.concat body)
    with
    | Ok pid -> pid
    | Error _ -> Alcotest.failf "%s should log in" user
  in
  let home user = ">udd>" ^ user in
  let adams =
    session "adams"
      [ [| K.Workload.Create_file { dir = home "adams"; name = "report" };
           K.Workload.Initiate { path = home "adams" ^ ">report"; reg = 0 } |];
        K.Workload.sequential_write ~seg_reg:0 ~pages:10;
        K.Workload.random_touches ~seg_reg:0 ~pages:10 ~count:60 ~write_pct:30
          ~seed:1;
        [| K.Workload.Set_acl
             { path = home "adams" ^ ">report"; user = "blake"; read = true;
               write = false };
           K.Workload.Advance_ec { ec = "report_out" } |] ]
  in
  let blake =
    session "blake"
      [ [| K.Workload.Initiate { path = ">library>manual"; reg = 1 } |];
        K.Workload.sequential_read ~seg_reg:1 ~pages:2;
        [| K.Workload.Await_ec { ec = "report_out"; value = 1 };
           K.Workload.Initiate { path = home "adams" ^ ">report"; reg = 0 } |];
        K.Workload.sequential_read ~seg_reg:0 ~pages:10;
        K.Workload.file_churn ~dir:(home "blake") ~files:4 ~pages_each:2
          ~seed:7 ]
  in
  let curie =
    session "curie"
      [ [| (* reads down fine *)
           K.Workload.Initiate { path = ">library>manual"; reg = 0 };
           K.Workload.Touch { seg_reg = 0; pageno = 0; offset = 0; write = false };
           (* her own level *)
           K.Workload.Initiate { path = ">intel>briefing"; reg = 1 };
           K.Workload.Touch { seg_reg = 1; pageno = 0; offset = 0; write = true };
           (* write down: refused at creation *)
           K.Workload.Create_file { dir = ">library"; name = "leak" };
           K.Workload.Terminate |] ]
  in
  let darwin =
    session "darwin"
      [ [| K.Workload.Await_ec { ec = "mail_in"; value = 2 } |];
        K.Workload.file_churn ~dir:(home "darwin") ~files:3 ~pages_each:3
          ~seed:3 ]
  in
  (* Mallory's bad password and mail arriving from the net. *)
  (match
     S.Answering_service.login svc ~user:"adams" ~password:"wrong"
       ~program:[| K.Workload.Terminate |]
   with
  | Error `Bad_password -> ()
  | _ -> Alcotest.fail "bad password");
  S.Network.inject net ~net:S.Network.Arpanet ~channel:"mail_in" ~bytes:512
    ~delay_ns:200_000;
  S.Network.inject net ~net:S.Network.Arpanet ~channel:"mail_in" ~bytes:1024
    ~delay_ns:900_000;

  (* The day runs. *)
  check Alcotest.bool "everyone finishes" true (K.Kernel.run_to_completion k);
  List.iter (fun pid -> S.Answering_service.logout svc ~pid)
    [ adams; blake; curie; darwin ];

  (* The books balance. *)
  check Alcotest.int "no failed processes" 0
    (K.User_process.failed (K.Kernel.user_process k));
  check Alcotest.bool "denials were recorded (curie's leak)" true
    (K.Kernel.denials k > 0);
  (match K.Kernel.quota_usage k ~path:">udd>adams" with
  | Some (used, limit) ->
      check Alcotest.bool "adams within quota" true (used <= limit && used >= 10)
  | None -> Alcotest.fail "quota");
  check Alcotest.int "invariants" 0 (List.length (K.Invariants.check k));
  check Alcotest.bool "conformance" true
    (Dg.Conformance.conforms (K.Kernel.dependency_audit k));
  check Alcotest.int "salvager clean" 0 (List.length (K.Salvager.scan k));
  check Alcotest.int "network drained" 2 (S.Network.delivered net);

  (* Night falls; the next incarnation picks up the world. *)
  K.Kernel.shutdown k;
  let k2 = K.Kernel.reboot config ~from:k in
  let blake2 =
    [| K.Workload.Initiate { path = ">udd>adams>report"; reg = 0 };
       K.Workload.Touch { seg_reg = 0; pageno = 9; offset = 0; write = false };
       K.Workload.Terminate |]
  in
  let pid =
    K.Kernel.spawn k2 ~principal:{ K.Acl.user = "blake"; project = "users" }
      ~pname:"blake_next_day" blake2
  in
  check Alcotest.bool "next day runs" true (K.Kernel.run_to_completion k2);
  let p = K.User_process.proc (K.Kernel.user_process k2) pid in
  (match p.K.User_process.pstate with
  | K.User_process.P_done -> ()
  | K.User_process.P_failed m -> Alcotest.failf "blake next day failed: %s" m
  | _ -> Alcotest.fail "blake next day stuck");
  check Alcotest.int "second-incarnation invariants" 0
    (List.length (K.Invariants.check k2))

let tests = [ Alcotest.test_case "a full day" `Slow test_full_day ]
