(* Printers and small accessors: the reporting surface the examples and
   benches rely on. *)

module K = Multics_kernel
module L = Multics_legacy
module Hw = Multics_hw
module Dg = Multics_depgraph
module Aim = Multics_aim

let check = Alcotest.check

let contains s affix = Astring.String.is_infix ~affix s

let test_fault_printers () =
  List.iter
    (fun (fault, needle) ->
      check Alcotest.bool needle true (contains (Hw.Fault.to_string fault) needle))
    [ (Hw.Fault.Missing_segment { segno = 3 }, "missing-segment");
      (Hw.Fault.Missing_page { segno = 1; pageno = 2; ptw_abs = 5 },
       "missing-page");
      (Hw.Fault.Quota_fault { segno = 1; pageno = 2 }, "quota-fault");
      (Hw.Fault.Locked_descriptor { segno = 1; pageno = 2; ptw_abs = 5 },
       "locked-descriptor");
      (Hw.Fault.Access_violation
         { segno = 1; access = Hw.Fault.Write; ring = 4 },
       "write");
      (Hw.Fault.Bounds_fault { segno = 1; wordno = 9 }, "bounds") ]

let test_hw_config_pp () =
  let s = Format.asprintf "%a" Hw.Hw_config.pp Hw.Hw_config.kernel_multics in
  check Alcotest.bool "mentions lock bit" true (contains s "lock-bit=true");
  let s = Format.asprintf "%a" Hw.Hw_config.pp Hw.Hw_config.legacy_multics in
  check Alcotest.bool "legacy has none" true (contains s "lock-bit=false")

let test_machine_stats_pp () =
  let machine = Hw.Machine.create Hw.Hw_config.legacy_multics in
  ignore (Hw.Phys_mem.read machine.Hw.Machine.mem 0);
  let s = Format.asprintf "%a" Hw.Machine.pp_stats machine in
  check Alcotest.bool "has read count" true (contains s "r=1")

let test_workload_printers () =
  List.iter
    (fun (action, needle) ->
      check Alcotest.bool needle true
        (contains (Format.asprintf "%a" K.Workload.pp_action action) needle))
    [ (K.Workload.Touch { seg_reg = 0; pageno = 1; offset = 2; write = true },
       "touch");
      (K.Workload.Initiate { path = ">a"; reg = 1 }, "initiate");
      (K.Workload.Set_acl { path = ">a"; user = "u"; read = true; write = false },
       "set-acl");
      (K.Workload.Await_ec { ec = "e"; value = 3 }, "await");
      (K.Workload.Terminate, "terminate") ]

let test_dep_kind_names () =
  List.iter
    (fun kind ->
      check Alcotest.bool "short is 1 char" true
        (String.length (Dg.Dep_kind.short kind) = 1))
    Dg.Dep_kind.all;
  check Alcotest.int "seven kinds" 7 (List.length Dg.Dep_kind.all)

let test_kernel_report () =
  let k = K.Kernel.boot K.Kernel.small_config in
  let s = Format.asprintf "%a" K.Kernel.pp_report k in
  List.iter
    (fun needle -> check Alcotest.bool needle true (contains s needle))
    [ "processes:"; "paging:"; "gates:"; "kernel time by manager" ]

let test_legacy_report () =
  let s = L.Old_supervisor.boot L.Old_supervisor.small_config in
  let out = Format.asprintf "%a" L.Old_supervisor.pp_report s in
  List.iter
    (fun needle -> check Alcotest.bool needle true (contains out needle))
    [ "Legacy Multics"; "races:"; "quota:" ]

let test_salvager_printer () =
  let f =
    { K.Salvager.f_kind = K.Salvager.Orphan_vtoc; f_detail = "uid 9";
      f_repairable = false }
  in
  let s = Format.asprintf "%a" K.Salvager.pp_finding f in
  check Alcotest.bool "kind" true (contains s "orphan-vtoc");
  check Alcotest.bool "operator note" true (contains s "operator")

let test_label_printer () =
  let l = Aim.Label.make Aim.Level.secret (Aim.Compartment.of_list [ 1; 3 ]) in
  let s = Aim.Label.to_string l in
  check Alcotest.bool "level" true (contains s "secret");
  check Alcotest.bool "compartments" true (contains s "{1,3}")

let test_acl_printer () =
  let s =
    Format.asprintf "%a" K.Acl.pp
      [ K.Acl.entry "alice" K.Acl.rw; K.Acl.entry "*" K.Acl.r ]
  in
  check Alcotest.bool "alice rw" true (contains s "alice.*:rw-");
  check Alcotest.bool "star r" true (contains s "*.*:r--")

let test_uid_printer () =
  let fresh = K.Ids.generator () in
  let real = fresh () in
  check Alcotest.bool "real" true
    (contains (Format.asprintf "%a" K.Ids.pp real) "uid1");
  let myth = K.Ids.mythical ~parent:real ~name:"x" in
  check Alcotest.bool "mythical" true
    (contains (Format.asprintf "%a" K.Ids.pp myth) "mythical")

let tests =
  [ Alcotest.test_case "fault printers" `Quick test_fault_printers;
    Alcotest.test_case "hw config pp" `Quick test_hw_config_pp;
    Alcotest.test_case "machine stats pp" `Quick test_machine_stats_pp;
    Alcotest.test_case "workload printers" `Quick test_workload_printers;
    Alcotest.test_case "dep kind names" `Quick test_dep_kind_names;
    Alcotest.test_case "kernel report" `Quick test_kernel_report;
    Alcotest.test_case "legacy report" `Quick test_legacy_report;
    Alcotest.test_case "salvager printer" `Quick test_salvager_printer;
    Alcotest.test_case "label printer" `Quick test_label_printer;
    Alcotest.test_case "acl printer" `Quick test_acl_printer;
    Alcotest.test_case "uid printer" `Quick test_uid_printer ]
