test/test_core.ml: Alcotest Astring Format List Multics_aim Multics_depgraph Multics_hw Multics_kernel Option Printf
