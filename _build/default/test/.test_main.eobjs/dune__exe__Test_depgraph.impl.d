test/test_depgraph.ml: Alcotest Astring Gen List Multics_depgraph Option Printf QCheck QCheck_alcotest
