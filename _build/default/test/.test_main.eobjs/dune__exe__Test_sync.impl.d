test/test_sync.ml: Alcotest Gen List Multics_sync QCheck QCheck_alcotest Result
