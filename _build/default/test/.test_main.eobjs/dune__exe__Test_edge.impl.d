test/test_edge.ml: Alcotest Array Astring Buffer List Multics_aim Multics_census Multics_hw Multics_kernel Multics_legacy Printf
