test/test_units.ml: Alcotest Array Fun Gen List Multics_hw Multics_kernel Multics_sync Printf QCheck QCheck_alcotest Result
