test/test_services.ml: Alcotest List Multics_aim Multics_kernel Multics_services Printf QCheck QCheck_alcotest
