test/test_census.ml: Alcotest Astring Format List Multics_census Printf
