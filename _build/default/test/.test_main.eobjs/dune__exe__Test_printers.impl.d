test/test_printers.ml: Alcotest Astring Format List Multics_aim Multics_depgraph Multics_hw Multics_kernel Multics_legacy String
