test/test_cache.ml: Alcotest Array List Multics_aim Multics_hw Multics_kernel Printf String
