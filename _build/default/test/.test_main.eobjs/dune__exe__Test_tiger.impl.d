test/test_tiger.ml: Alcotest Astring List Multics_aim Multics_hw Multics_kernel Multics_services Printf
