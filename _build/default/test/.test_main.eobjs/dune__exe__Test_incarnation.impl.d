test/test_incarnation.ml: Alcotest List Multics_aim Multics_hw Multics_kernel
