test/test_hw.ml: Alcotest Array List Multics_hw QCheck QCheck_alcotest
