test/test_salvager.ml: Alcotest Array Format List Multics_aim Multics_hw Multics_kernel Option
