test/test_aim.ml: Alcotest Array Gen List Multics_aim QCheck QCheck_alcotest
