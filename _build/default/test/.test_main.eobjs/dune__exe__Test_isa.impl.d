test/test_isa.ml: Alcotest Array Astring List Multics_aim Multics_hw Multics_kernel Multics_legacy QCheck QCheck_alcotest
