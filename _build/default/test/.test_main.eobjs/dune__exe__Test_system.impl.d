test/test_system.ml: Alcotest List Multics_aim Multics_depgraph Multics_hw Multics_kernel Multics_services
