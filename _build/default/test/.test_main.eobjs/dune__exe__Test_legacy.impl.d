test/test_legacy.ml: Alcotest Astring List Multics_aim Multics_depgraph Multics_hw Multics_kernel Multics_legacy Option Printf String
