test/test_more.ml: Alcotest Array Astring Format List Multics_aim Multics_depgraph Multics_hw Multics_kernel Multics_legacy Option Printf QCheck QCheck_alcotest
