test/test_fuzz.ml: Array Format List Multics_aim Multics_depgraph Multics_hw Multics_kernel Multics_legacy Printf QCheck QCheck_alcotest String
