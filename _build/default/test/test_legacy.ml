(* Tests for the legacy supervisor: same workloads as Kernel/Multics,
   old structure, old semantics. *)

module K = Multics_kernel
module L = Multics_legacy
module Hw = Multics_hw
module Dg = Multics_depgraph

let check = Alcotest.check

let open_acl = [ K.Acl.entry "*" K.Acl.rwe ]

let boot ?(config = L.Old_supervisor.small_config) () =
  let s = L.Old_supervisor.boot config in
  L.Old_supervisor.mkdir s ~path:">home" ~acl:open_acl;
  s

let file_writer ~dir ~name ~pages =
  K.Workload.concat
    [ [| K.Workload.Create_file { dir; name };
         K.Workload.Initiate { path = dir ^ ">" ^ name; reg = 0 } |];
      K.Workload.sequential_write ~seg_reg:0 ~pages ]

let test_write_read_roundtrip () =
  let s = boot () in
  let prog =
    K.Workload.concat
      [ file_writer ~dir:">home" ~name:"data" ~pages:4;
        K.Workload.sequential_read ~seg_reg:0 ~pages:4 ]
  in
  let pid = L.Old_supervisor.spawn s ~pname:"rw" prog in
  check Alcotest.bool "completed" true (L.Old_supervisor.run_to_completion s);
  match L.Old_supervisor.proc_state s pid with
  | L.Old_types.O_done -> ()
  | _ -> Alcotest.fail "process should be done"

(* The dynamic upward quota search: deeper files walk more AST levels. *)
let test_quota_upward_search_depth () =
  let s = boot () in
  L.Old_supervisor.mkdir s ~path:">home>a" ~acl:open_acl;
  L.Old_supervisor.mkdir s ~path:">home>a>b" ~acl:open_acl;
  L.Old_supervisor.mkdir s ~path:">home>a>b>c" ~acl:open_acl;
  ignore
    (L.Old_supervisor.spawn s ~pname:"shallow"
       (file_writer ~dir:">home" ~name:"s" ~pages:3));
  check Alcotest.bool "run 1" true (L.Old_supervisor.run_to_completion s);
  let stats = L.Old_supervisor.stats s in
  let shallow_levels = stats.L.Old_types.st_quota_search_levels in
  let shallow_searches = stats.L.Old_types.st_quota_searches in
  ignore
    (L.Old_supervisor.spawn s ~pname:"deep"
       (file_writer ~dir:">home>a>b>c" ~name:"d" ~pages:3));
  check Alcotest.bool "run 2" true (L.Old_supervisor.run_to_completion s);
  let deep_levels = stats.L.Old_types.st_quota_search_levels - shallow_levels in
  let deep_searches = stats.L.Old_types.st_quota_searches - shallow_searches in
  check Alcotest.bool "searches happened" true
    (shallow_searches > 0 && deep_searches > 0);
  (* Deeper placement means strictly more levels per search. *)
  let per_shallow = float_of_int shallow_levels /. float_of_int shallow_searches in
  let per_deep = float_of_int deep_levels /. float_of_int deep_searches in
  check Alcotest.bool
    (Printf.sprintf "deep search walks further (%.1f vs %.1f)" per_deep
       per_shallow)
    true (per_deep > per_shallow)

(* Old semantics: quota may be designated on a directory with children. *)
let test_dynamic_quota_designation () =
  let s = boot () in
  L.Old_supervisor.mkdir s ~path:">home>p" ~acl:open_acl;
  L.Old_supervisor.mkdir s ~path:">home>p>child" ~acl:open_acl;
  (* No exception, despite the child: *)
  L.Old_supervisor.set_quota s ~path:">home>p" ~limit:10;
  ignore
    (L.Old_supervisor.spawn s ~pname:"w"
       (file_writer ~dir:">home>p>child" ~name:"f" ~pages:4));
  check Alcotest.bool "completed" true (L.Old_supervisor.run_to_completion s);
  match L.Old_supervisor.quota_usage s ~path:">home>p" with
  | Some (used, limit) ->
      check Alcotest.int "limit" 10 limit;
      check Alcotest.bool "pages charged" true (used >= 4)
  | None -> Alcotest.fail "expected quota"

let test_quota_enforced () =
  let s = boot () in
  L.Old_supervisor.mkdir s ~path:">home>tiny" ~acl:open_acl;
  L.Old_supervisor.set_quota s ~path:">home>tiny" ~limit:3;
  let pid =
    L.Old_supervisor.spawn s ~pname:"big"
      (file_writer ~dir:">home>tiny" ~name:"big" ~pages:8)
  in
  ignore (L.Old_supervisor.run_to_completion s);
  match L.Old_supervisor.proc_state s pid with
  | L.Old_types.O_failed msg ->
      check Alcotest.bool "quota message" true
        (Astring.String.is_infix ~affix:"quota" msg)
  | _ -> Alcotest.fail "should fail on quota"

(* In-kernel resolution gives exactly two answers. *)
let test_resolution_two_answers () =
  let s = boot () in
  L.Old_supervisor.mkdir s ~path:">vault"
    ~acl:[ K.Acl.entry "alice" K.Acl.rwe; K.Acl.entry "root" K.Acl.rwe ];
  L.Old_supervisor.create_file s ~path:">vault>gold" ~acl:open_acl;
  let st = L.Old_supervisor.state s in
  let bob = { K.Acl.user = "bob"; project = "p" } in
  (* Bob can reach the file: access judged at the target only. *)
  (match L.Old_directory.resolve st ~principal:bob ~path:">vault>gold" with
  | Ok (_, mode) -> check Alcotest.bool "found" true mode.K.Acl.read
  | Error `No_access -> Alcotest.fail "target ACL grants bob access");
  (* Nonexistent and inaccessible are the same answer. *)
  (match L.Old_directory.resolve st ~principal:bob ~path:">vault>nothing" with
  | Error `No_access -> ()
  | Ok _ -> Alcotest.fail "nonexistent must be no-access");
  match L.Old_directory.resolve st ~principal:bob ~path:">no>such>path" with
  | Error `No_access -> ()
  | Ok _ -> Alcotest.fail "bad path must be no-access"

(* The AST hierarchy constraint: a directory with active inferiors
   cannot be deactivated. *)
let test_hierarchy_constraint () =
  let s = boot () in
  L.Old_supervisor.create_file s ~path:">home>f" ~acl:open_acl;
  let st = L.Old_supervisor.state s in
  let de =
    match L.Old_directory.resolve st ~principal:{ K.Acl.user = "u"; project = "p" }
            ~path:">home>f"
    with
    | Ok (de, _) -> de
    | Error _ -> Alcotest.fail "resolve"
  in
  (match L.Old_storage.activate st ~uid:de.L.Old_types.od_uid with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "activate");
  (* The file's superior directory is active and pinned. *)
  let home_uid =
    match
      L.Old_directory.resolve st ~principal:{ K.Acl.user = "root"; project = "sys" }
        ~path:">home"
    with
    | Ok (de, _) -> de.L.Old_types.od_uid
    | Error _ -> Alcotest.fail "resolve home"
  in
  let home_ast =
    match L.Old_storage.find_active st ~uid:home_uid with
    | Some i -> i
    | None -> Alcotest.fail "home must be active (parent link)"
  in
  check Alcotest.bool "pinned by inferior" false
    (L.Old_storage.deactivate_for_test st ~ast:home_ast);
  (* Deactivate the file first; then home becomes deactivatable. *)
  let f_ast = Option.get (L.Old_storage.find_active st ~uid:de.L.Old_types.od_uid) in
  check Alcotest.bool "file deactivates" true
    (L.Old_storage.deactivate_for_test st ~ast:f_ast);
  check Alcotest.bool "home deactivates after" true
    (L.Old_storage.deactivate_for_test st ~ast:home_ast)

(* The race window: concurrent faults pay the interpretive
   retranslation (there is no descriptor lock bit). *)
let test_retranslation_on_race () =
  let config =
    { L.Old_supervisor.small_config with
      L.Old_supervisor.hw =
        Multics_hw.Hw_config.with_frames Multics_hw.Hw_config.legacy_multics 38 }
  in
  let s = L.Old_supervisor.boot config in
  L.Old_supervisor.mkdir s ~path:">home" ~acl:open_acl;
  (* Two processes thrash on their own files so their faults overlap. *)
  let prog name =
    K.Workload.concat
      [ file_writer ~dir:">home" ~name ~pages:10;
        K.Workload.random_touches ~seg_reg:0 ~pages:10 ~count:60 ~write_pct:50
          ~seed:(String.length name) ]
  in
  ignore (L.Old_supervisor.spawn s ~pname:"r1" (prog "file_one"));
  ignore (L.Old_supervisor.spawn s ~pname:"r2" (prog "file_two"));
  check Alcotest.bool "completed" true (L.Old_supervisor.run_to_completion s);
  let stats = L.Old_supervisor.stats s in
  check Alcotest.bool "page reads happened" true
    (stats.L.Old_types.st_page_reads > 0);
  check Alcotest.bool "retranslations happened" true
    (stats.L.Old_types.st_retranslations > 0)

(* Observed dependency edges rediscover Figure 3's extra arrows. *)
let test_observed_edges_beyond_figure2 () =
  let s = boot () in
  L.Old_supervisor.mkdir s ~path:">home>d" ~acl:open_acl;
  L.Old_supervisor.set_quota s ~path:">home>d" ~limit:32;
  ignore
    (L.Old_supervisor.spawn s ~pname:"w"
       (file_writer ~dir:">home>d" ~name:"f" ~pages:6));
  check Alcotest.bool "completed" true (L.Old_supervisor.run_to_completion s);
  let g = L.Old_supervisor.observed_graph s in
  (* page control reads segment control's AST for quota... *)
  check Alcotest.bool "pc->sc" true
    (Dg.Graph.mem_edge g ~from:"page_control" ~to_:"segment_control");
  (* ...segment control reads directory control's records... *)
  check Alcotest.bool "sc->fdc" true
    (Dg.Graph.mem_edge g ~from:"segment_control" ~to_:"directory_control");
  (* ...and process control stores states in segments. *)
  check Alcotest.bool "prc->sc" true
    (Dg.Graph.mem_edge g ~from:"process_control" ~to_:"segment_control")

(* Full pack: segment control directly updates the directory entry. *)
let test_full_pack_direct_update () =
  let config =
    { L.Old_supervisor.small_config with
      L.Old_supervisor.disk_packs = 3; records_per_pack = 8 }
  in
  let s = L.Old_supervisor.boot config in
  L.Old_supervisor.mkdir s ~path:">home" ~acl:open_acl;
  ignore
    (L.Old_supervisor.spawn s ~pname:"f1"
       (file_writer ~dir:">home" ~name:"a" ~pages:5));
  ignore (L.Old_supervisor.run_to_completion s);
  ignore
    (L.Old_supervisor.spawn s ~pname:"f2"
       (file_writer ~dir:">home" ~name:"b" ~pages:5));
  check Alcotest.bool "completed" true (L.Old_supervisor.run_to_completion s);
  let stats = L.Old_supervisor.stats s in
  check Alcotest.bool "relocation happened" true
    (stats.L.Old_types.st_relocations > 0);
  (* The moved file remains reachable: the entry was updated in place. *)
  let st = L.Old_supervisor.state s in
  match
    L.Old_directory.resolve st ~principal:{ K.Acl.user = "user"; project = "proj" }
      ~path:">home>b"
  with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "moved file must stay reachable"

(* Same workload on both kernels: the new memory manager is slower per
   fault (PL/I + daemon) — the paper's P4 shape, asserted coarsely. *)
let test_new_kernel_pays_language_factor () =
  let pages = 8 in
  let prog = file_writer ~dir:">home" ~name:"f" ~pages in
  (* Legacy *)
  let s = boot () in
  ignore (L.Old_supervisor.spawn s ~pname:"w" prog);
  ignore (L.Old_supervisor.run_to_completion s);
  let legacy_pc =
    List.assoc "page_control" (K.Meter.by_manager (L.Old_supervisor.meter s))
  in
  (* New kernel *)
  let k = K.Kernel.boot K.Kernel.small_config in
  K.Kernel.mkdir k ~path:">home" ~acl:open_acl
    ~label:Multics_aim.Label.system_low;
  ignore (K.Kernel.spawn k ~pname:"w" prog);
  ignore (K.Kernel.run_to_completion k);
  let new_pfm =
    List.assoc "page_frame_manager" (K.Meter.by_manager (K.Kernel.meter k))
  in
  check Alcotest.bool
    (Printf.sprintf "new (%d ns) costs more than legacy (%d ns)" new_pfm
       legacy_pc)
    true
    (new_pfm > legacy_pc)

let tests =
  [ Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
    Alcotest.test_case "quota upward search depth" `Quick
      test_quota_upward_search_depth;
    Alcotest.test_case "dynamic quota designation" `Quick
      test_dynamic_quota_designation;
    Alcotest.test_case "quota enforced" `Quick test_quota_enforced;
    Alcotest.test_case "resolution two answers" `Quick
      test_resolution_two_answers;
    Alcotest.test_case "hierarchy constraint" `Quick test_hierarchy_constraint;
    Alcotest.test_case "retranslation on race" `Quick
      test_retranslation_on_race;
    Alcotest.test_case "observed edges beyond figure 2" `Quick
      test_observed_edges_beyond_figure2;
    Alcotest.test_case "full pack direct update" `Quick
      test_full_pack_direct_update;
    Alcotest.test_case "new kernel pays language factor" `Quick
      test_new_kernel_pays_language_factor ]
