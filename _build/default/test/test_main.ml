let () =
  Alcotest.run "multics"
    [ ("hw", Test_hw.tests); ("sync", Test_sync.tests); ("depgraph", Test_depgraph.tests); ("aim", Test_aim.tests); ("census", Test_census.tests); ("core", Test_core.tests); ("legacy", Test_legacy.tests); ("services", Test_services.tests); ("units", Test_units.tests); ("fuzz", Test_fuzz.tests); ("salvager", Test_salvager.tests); ("tiger", Test_tiger.tests); ("incarnation", Test_incarnation.tests); ("more", Test_more.tests); ("edge", Test_edge.tests); ("system", Test_system.tests); ("printers", Test_printers.tests); ("isa", Test_isa.tests) ]
