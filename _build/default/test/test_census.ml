(* Tests asserting that the census model reproduces every aggregate the
   paper publishes. *)

module Census = Multics_census

let check = Alcotest.check

let base = Census.Inventory.base_1973
let ring0 = Census.Inventory.ring_zero base

(* "the number of source lines in ring zero is actually not 36,000 but
   44,000" *)
let test_ring0_source () =
  check Alcotest.int "44,000 source lines" 44_000
    (Census.Inventory.total_source ring0)

(* "there were the equivalent of 36,000 lines of PL/I within ring zero" *)
let test_ring0_pl1_equivalent () =
  let equiv = Census.Inventory.total_pl1_equivalent ring0 in
  check Alcotest.bool
    (Printf.sprintf "~36,000 PL/I-equivalent (got %d)" equiv)
    true
    (abs (equiv - 36_000) <= 500)

(* "approximately 1,200 distinct entry points ... of which 157 were
   callable by the user" *)
let test_entry_points () =
  check Alcotest.int "1,200 entries" 1_200 (Census.Inventory.total_entries ring0);
  check Alcotest.int "157 user entries" 157
    (Census.Inventory.total_user_entries ring0)

(* "These programs were the equivalent of 10,000 lines of PL/I code" *)
let test_answering_service_size () =
  let answering = Census.Inventory.find base "answering_service" in
  check Alcotest.int "10,000 lines" 10_000
    (Census.Component.source_lines answering)

(* Start of project: 54K total *)
let test_total_54k () =
  check Alcotest.int "54,000 total" 54_000
    (Census.Inventory.total_source (Census.Inventory.kernel base))

let apply_one step =
  let _, summary = step.Census.Restructure.apply base in
  summary

(* The size table: Linker 2K, Name Manager 1K, Answering Service 9K,
   Network I/O 6K, Initialization 2K, Exclusive use of PL/I 8K, total
   28K. *)
let test_reduction_linker () =
  let s = apply_one Census.Restructure.extract_linker in
  check Alcotest.int "2K" 2_000 s.Census.Restructure.source_saved

let test_reduction_name_manager () =
  let s = apply_one Census.Restructure.extract_name_manager in
  check Alcotest.int "1K" 1_000 s.Census.Restructure.source_saved

let test_reduction_answering () =
  let s = apply_one Census.Restructure.split_answering_service in
  check Alcotest.int "9K" 9_100 s.Census.Restructure.source_saved

let test_reduction_network () =
  let s = apply_one Census.Restructure.extract_network in
  check Alcotest.int "6K" 6_100 s.Census.Restructure.source_saved

let test_reduction_initialization () =
  let s = apply_one Census.Restructure.extract_initialization in
  check Alcotest.int "2K" 2_100 s.Census.Restructure.source_saved

let test_apply_all_28k () =
  let final, summaries = Census.Restructure.apply_all base in
  let total =
    List.fold_left
      (fun acc s -> acc + s.Census.Restructure.source_saved)
      0 summaries
  in
  check Alcotest.bool (Printf.sprintf "~28K total saved (got %d)" total) true
    (abs (total - 28_000) <= 500);
  (* "could be to cut the size of the kernel roughly in half" *)
  let remaining =
    Census.Inventory.total_source (Census.Inventory.kernel final)
  in
  check Alcotest.bool
    (Printf.sprintf "roughly half of 54K remains (got %d)" remaining)
    true
    (remaining > 22_000 && remaining < 30_000)

(* Recoding assembly saves ~8K source lines ("Exclusive use of PL/I 8K")
   when run after the extractions, as in the table. *)
let test_recode_assembly_8k () =
  let with_extractions =
    List.fold_left
      (fun components step -> fst (step.Census.Restructure.apply components))
      base
      [ Census.Restructure.extract_linker;
        Census.Restructure.extract_name_manager;
        Census.Restructure.split_answering_service;
        Census.Restructure.extract_network;
        Census.Restructure.extract_initialization ]
  in
  let _, s = Census.Restructure.recode_assembly.Census.Restructure.apply
      with_extractions
  in
  check Alcotest.bool
    (Printf.sprintf "~8K (got %d)" s.Census.Restructure.source_saved)
    true
    (abs (s.Census.Restructure.source_saved - 8_000) <= 250)

(* "it only removed 2 1/2% of the entry points inside the kernel ...
   but it eliminated 11% of the entry points from the user domain" *)
let test_linker_entry_point_effect () =
  let s = apply_one Census.Restructure.extract_linker in
  let entries = Census.Inventory.total_entries ring0 in
  let user = Census.Inventory.total_user_entries ring0 in
  let pct a b = 100.0 *. float_of_int a /. float_of_int b in
  let entry_pct = pct s.Census.Restructure.entries_removed entries in
  let user_pct = pct s.Census.Restructure.user_entries_removed user in
  check Alcotest.bool
    (Printf.sprintf "~2.5%% of entries (got %.1f%%)" entry_pct)
    true
    (entry_pct > 2.0 && entry_pct < 3.0);
  check Alcotest.bool
    (Printf.sprintf "~11%% of user entries (got %.1f%%)" user_pct)
    true
    (user_pct > 10.0 && user_pct < 12.0)

(* "reduced the size of the kernel only by 2 1/2%" (name manager),
   "reduction by a factor of four in the total size of the code" *)
let test_name_manager_effects () =
  let linker_like = Census.Inventory.find base "name_manager" in
  let pct =
    100.0
    *. float_of_int (Census.Component.source_lines linker_like)
    /. float_of_int (Census.Inventory.total_source ring0)
  in
  check Alcotest.bool (Printf.sprintf "~2.5%% of kernel (got %.1f%%)" pct) true
    (pct > 2.0 && pct < 3.0);
  match Census.Restructure.user_domain_algorithm_sizes with
  | [ (_, in_kernel, out_of_kernel) ] ->
      check Alcotest.int "factor of four" 4 (in_kernel / out_of_kernel)
  | _ -> Alcotest.fail "expected one algorithm-size entry"

(* "this 7,000 lines of code in the kernel may shrink to less than
   1,000, a reduction of 17% of the supervisor" (of the 36K PL/I
   equivalent) *)
let test_network_effects () =
  let network = Census.Inventory.find base "network_control" in
  check Alcotest.int "7,000 lines" 7_000 (Census.Component.source_lines network);
  let s = apply_one Census.Restructure.extract_network in
  let pct =
    100.0
    *. float_of_int s.Census.Restructure.pl1_equiv_saved
    /. float_of_int (Census.Inventory.total_pl1_equivalent ring0)
  in
  check Alcotest.bool (Printf.sprintf "~17%% of supervisor (got %.1f%%)" pct)
    true
    (pct > 15.0 && pct < 19.0)

(* Specialisation estimate: "at most another 15 to 25%" *)
let test_specialize_estimate () =
  let final, _ = Census.Restructure.apply_all base in
  let low, high = Census.Restructure.specialize_file_store_estimate final in
  let remaining =
    Census.Inventory.total_pl1_equivalent (Census.Inventory.kernel final)
  in
  check Alcotest.int "15%" (remaining * 15 / 100) low;
  check Alcotest.int "25%" (remaining * 25 / 100) high

(* Reports render without error and carry the headline numbers. *)
let test_reports_render () =
  let table = Format.asprintf "%a" Census.Report.size_table () in
  List.iter
    (fun needle ->
      check Alcotest.bool ("mentions " ^ needle) true
        (Astring.String.is_infix ~affix:needle table))
    [ "44K"; "10K"; "54K"; "Linker"; "Name Manager"; "Answering Service";
      "Network I/O"; "Initialization"; "Exclusive use of PL/I"; "28K" ];
  let entries = Format.asprintf "%a" Census.Report.entry_point_table () in
  check Alcotest.bool "mentions 1200" true
    (Astring.String.is_infix ~affix:"1200" entries)

let test_recode_idempotent_on_pl1 () =
  let comp =
    { Census.Component.name = "x"; pl1_lines = 100; asm_lines = 0;
      entry_points = 1; user_entry_points = 0;
      region = Census.Component.Ring_zero }
  in
  check Alcotest.int "no change" 100
    (Census.Component.recode_in_pl1 comp).Census.Component.pl1_lines

let tests =
  [ Alcotest.test_case "ring0 source 44K" `Quick test_ring0_source;
    Alcotest.test_case "ring0 pl1-equivalent 36K" `Quick
      test_ring0_pl1_equivalent;
    Alcotest.test_case "entry points 1200/157" `Quick test_entry_points;
    Alcotest.test_case "answering service 10K" `Quick
      test_answering_service_size;
    Alcotest.test_case "total 54K" `Quick test_total_54k;
    Alcotest.test_case "reduction: linker 2K" `Quick test_reduction_linker;
    Alcotest.test_case "reduction: name manager 1K" `Quick
      test_reduction_name_manager;
    Alcotest.test_case "reduction: answering service 9K" `Quick
      test_reduction_answering;
    Alcotest.test_case "reduction: network 6K" `Quick test_reduction_network;
    Alcotest.test_case "reduction: initialization 2K" `Quick
      test_reduction_initialization;
    Alcotest.test_case "apply all ~28K, halved" `Quick test_apply_all_28k;
    Alcotest.test_case "recode assembly ~8K" `Quick test_recode_assembly_8k;
    Alcotest.test_case "linker entry-point effect" `Quick
      test_linker_entry_point_effect;
    Alcotest.test_case "name manager effects" `Quick test_name_manager_effects;
    Alcotest.test_case "network effects" `Quick test_network_effects;
    Alcotest.test_case "specialize estimate" `Quick test_specialize_estimate;
    Alcotest.test_case "reports render" `Quick test_reports_render;
    Alcotest.test_case "recode idempotent on pl1" `Quick
      test_recode_idempotent_on_pl1 ]
